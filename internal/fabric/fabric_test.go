package fabric

import (
	"testing"

	"netcache/internal/client"
	"netcache/internal/controller"
	"netcache/internal/netproto"
	"netcache/internal/server"
	"netcache/internal/switchcore"
)

// twoTier wires the smallest multi-switch fabric: one server behind node B,
// one client on node A, a trunk between them — the leaf-spine topology at
// its minimum size, assembled only from the fabric layer.
//
// Node A (port 0 = trunk, port 1 = client)
// Node B (port 0 = server, port 1 = trunk)
func twoTier(t *testing.T) (a, b *Node, cl *client.Client, srv *server.Server) {
	t.Helper()
	var err error
	if a, err = NewNode("a", switchcore.Config{}); err != nil {
		t.Fatal(err)
	}
	if b, err = NewNode("b", switchcore.Config{}); err != nil {
		t.Fatal(err)
	}
	srv = server.New(server.Config{Addr: 1, Shards: 1})
	if err := b.AttachServer(0, srv); err != nil {
		t.Fatal(err)
	}
	Link(a, 0, b, 1)
	part := client.HashPartitioner([]netproto.Addr{1})
	cl, err = client.New(client.Config{Addr: 0x8000, Partition: part})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AttachClient(1, cl); err != nil {
		t.Fatal(err)
	}
	// A reaches the server via the trunk; B reaches the client back the
	// same way.
	if err := a.InstallRoute(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.InstallRoute(0x8000, 1); err != nil {
		t.Fatal(err)
	}
	return a, b, cl, srv
}

func TestTrunkCarriesQueries(t *testing.T) {
	a, b, cl, _ := twoTier(t)
	if err := cl.Put(netproto.Key{'k'}, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(netproto.Key{'k'})
	if err != nil || string(v) != "v1" {
		t.Fatalf("get through trunk: %q %v", v, err)
	}
	if a.Net.Delivered.Value() == 0 || b.Net.Delivered.Value() == 0 {
		t.Errorf("both nets should have delivered frames: a=%d b=%d",
			a.Net.Delivered.Value(), b.Net.Delivered.Value())
	}
}

// A trunk peer injecting at an out-of-range port cannot return the switch
// error to anyone; it must surface as the receiving net's ProcessErrors
// counter — the fix for the silent drops of the old hand-wired delivery.
func TestTrunkSurfacesProcessErrors(t *testing.T) {
	a, err := NewNode("a", switchcore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode("b", switchcore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Mis-cabled trunk: B's side of the cable plugs into a port its chip
	// does not have. A routes the server's address across it.
	Link(a, 1, b, b.NumPorts()+7)
	if err := a.InstallRoute(1, 1); err != nil {
		t.Fatal(err)
	}

	part := client.HashPartitioner([]netproto.Addr{1})
	cl, err := client.New(client.Config{
		Addr: 0x8000, Partition: part,
		Timeout: client.NoWait, Retries: client.NoRetries,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AttachClient(2, cl); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(netproto.Key{'x'}); err == nil {
		t.Fatal("query crossed a mis-cabled trunk and was answered")
	}
	if b.Net.ProcessErrors.Value() == 0 {
		t.Error("mis-cabled trunk injection should count as ProcessErrors on the receiving net")
	}
}

func TestNodeRebootReprovisionsRoutes(t *testing.T) {
	_, b, cl, _ := twoTier(t)
	if err := cl.Put(netproto.Key{'k'}, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Reboot(); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(netproto.Key{'k'})
	if err != nil || string(v) != "v1" {
		t.Fatalf("get after reboot: %q %v", v, err)
	}
}

func TestNodeControllerLifecycle(t *testing.T) {
	_, b, cl, srv := twoTier(t)
	if err := b.SetController(controller.Config{
		Nodes:     map[netproto.Addr]controller.StorageNode{1: srv},
		Partition: func(netproto.Key) netproto.Addr { return 1 },
		PortOf:    func(netproto.Addr) (int, bool) { return 0, true },
	}); err != nil {
		t.Fatal(err)
	}
	key := netproto.Key{'h'}
	if err := cl.Put(key, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	if err := b.Controller.InsertKey(key); err != nil {
		t.Fatal(err)
	}
	// Warm restart adopts the installed entry.
	old := b.Controller
	if err := b.RestartController(true); err != nil {
		t.Fatal(err)
	}
	if b.Controller == old {
		t.Fatal("controller not replaced")
	}
	if !b.Controller.Cached(key) {
		t.Error("warm restart should adopt the switch's entries")
	}
	// Cold restart wipes the cache; reads still work (fall through).
	if err := b.RestartController(false); err != nil {
		t.Fatal(err)
	}
	if b.Controller.Len() != 0 {
		t.Error("cold restart should start empty")
	}
	if v, err := cl.Get(key); err != nil || string(v) != "hot" {
		t.Fatalf("get after cold controller restart: %q %v", v, err)
	}
}

func TestCrashServerAtNode(t *testing.T) {
	_, b, cl, _ := twoTier(t)
	if err := cl.Put(netproto.Key{'k'}, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	b.CrashServer(0)
	fast, err := client.New(client.Config{
		Addr: 0x8001, Partition: client.HashPartitioner([]netproto.Addr{1}),
		Timeout: client.NoWait, Retries: client.NoRetries,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AttachClient(2, fast); err != nil {
		t.Fatal(err)
	}
	if _, err := fast.Get(netproto.Key{'k'}); err == nil {
		t.Fatal("crashed server answered")
	}
	b.RestartServer(0, false)
	if v, err := cl.Get(netproto.Key{'k'}); err != nil || string(v) != "v1" {
		t.Fatalf("get after restart: %q %v", v, err)
	}
}
