// Package fabric is the assembly layer shared by every NetCache topology:
// the wiring that used to live inside rack.Rack, extracted so that a single
// rack, a leaf-spine fabric, or any future multi-tier deployment composes
// from the same parts instead of hand-rolling delivery closures.
//
// A Node is one switch running the NetCache program together with
// everything a deployed switch carries: its own simnet.Net (so per-port
// fault rules, partitions and port-down apply to every link the switch
// terminates — including inter-switch trunks), the provisioned routing
// table (remembered so a Reboot can re-provision it, as a switch OS would
// from its startup config), the endpoints attached to its ports, and
// optionally the controller managing its cache (remembered so
// RestartController can build a warm or cold replacement).
//
// Link cables a port of one node to a port of another: frames the first
// switch emits on its trunk port are injected into the second switch at the
// peer port, and vice versa. Both cable segments run through each net's
// fault machinery, so loss, duplication, reordering, corruption, partition
// and port-down rules apply to uplinks exactly as to server and client
// links. Inject errors on a trunk cannot be returned to anyone — the frame
// is in flight — so they surface as the owning net's ProcessErrors counter,
// the same idiom as the other simnet injection counters.
package fabric

import (
	"fmt"

	"netcache/internal/client"
	"netcache/internal/controller"
	"netcache/internal/netproto"
	"netcache/internal/qtrace"
	"netcache/internal/server"
	"netcache/internal/simnet"
	"netcache/internal/stats"
	"netcache/internal/switchcore"
)

// route is one provisioned routing-table entry, remembered for Reboot.
type route struct {
	addr netproto.Addr
	port int
}

// Node is one switch plus its attached world: fabric, endpoints, routes,
// and (optionally) the controller that manages its cache.
type Node struct {
	// Name labels the node in errors ("spine", "tor0", ...).
	Name string
	// Switch is the node's NetCache switch.
	Switch *switchcore.Switch
	// Net is the node's simnet fabric: every port of the switch —
	// server, client, or inter-switch trunk — is a port of this net, so
	// fault injection addresses any link the switch terminates.
	Net *simnet.Net
	// Controller manages the switch cache; nil until SetController.
	// Replaced by RestartController.
	Controller *controller.Controller

	routes  []route
	servers map[int]*server.Server
	ctlCfg  controller.Config
	hasCtl  bool
}

// NewNode builds a switch (zero cfg means switchcore.TestConfig) and wraps
// it in a fresh fabric.
func NewNode(name string, cfg switchcore.Config) (*Node, error) {
	if cfg.CacheSize == 0 {
		cfg = switchcore.TestConfig()
	}
	sw, err := switchcore.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("fabric: %s: %w", name, err)
	}
	return &Node{
		Name:    name,
		Switch:  sw,
		Net:     simnet.New(sw),
		servers: make(map[int]*server.Server),
	}, nil
}

// NumPorts returns the switch's port count.
func (n *Node) NumPorts() int { return n.Switch.Config().Chip.NumPorts() }

// InstallRoute provisions addr → port in the switch routing table and
// records the entry so Reboot can re-provision it.
func (n *Node) InstallRoute(addr netproto.Addr, port int) error {
	if err := n.Switch.InstallRoute(addr, port); err != nil {
		return fmt.Errorf("fabric: %s: %w", n.Name, err)
	}
	n.routes = append(n.routes, route{addr, port})
	return nil
}

// AttachServer cables a storage server to port: its transmit path injects
// into this net, frames emitted toward the port run its Receive, and a
// route for its address is provisioned. Like all attachment, not safe
// concurrently with traffic.
func (n *Node) AttachServer(port int, srv *server.Server) error {
	srv.SetSend(func(frame []byte) { _ = n.Net.Inject(frame, port) })
	n.Net.Attach(port, srv.Receive)
	if err := n.InstallRoute(srv.Addr(), port); err != nil {
		return err
	}
	// The node alias is the server's failover-stable address: the home
	// route above is re-pointed when the partition fails over, the alias
	// never is, so node-to-node replication traffic always reaches this
	// physical server.
	if err := n.InstallRoute(netproto.NodeAlias(srv.Addr()), port); err != nil {
		return err
	}
	n.servers[port] = srv
	return nil
}

// AttachClient cables a client endpoint to port, including the vectorized
// batch path (client.SetSendBatch → simnet.InjectBatch), and provisions a
// route for its address.
func (n *Node) AttachClient(port int, cl *client.Client) error {
	cl.SetSend(func(frame []byte) { _ = n.Net.Inject(frame, port) })
	cl.SetSendBatch(func(frames [][]byte) { _ = n.Net.InjectBatch(frames, port) })
	n.Net.Attach(port, cl.Receive)
	return n.InstallRoute(cl.Addr(), port)
}

// Link cables aPort of node a to bPort of node b: an inter-switch trunk.
// Frames a's switch emits on aPort (after a's FromSwitch fault rules) are
// injected into b at bPort (through b's ToSwitch fault rules), and
// symmetrically. The handlers never retain frames — Inject is synchronous
// with respect to its argument — so pooled buffers flow through trunks
// without copies. Process errors on the far side surface as that net's
// ProcessErrors counter.
func Link(a *Node, aPort int, b *Node, bPort int) {
	a.Net.Attach(aPort, func(frame []byte) { _ = b.Net.Inject(frame, bPort) })
	b.Net.Attach(bPort, func(frame []byte) { _ = a.Net.Inject(frame, aPort) })
}

// SetController builds the node's controller from cfg (cfg.Switch is
// overridden with the node's own switch) and remembers the config so
// RestartController can construct a replacement against the same node.
func (n *Node) SetController(cfg controller.Config) error {
	cfg.Switch = n.Switch
	ctl, err := controller.New(cfg)
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", n.Name, err)
	}
	n.ctlCfg = cfg
	n.hasCtl = true
	n.Controller = ctl
	return nil
}

// RestartController replaces the controller process. With rebuild the new
// controller adopts the entries installed in the warm switch; without it
// the switch cache is wiped first, so the empty controller and the switch
// agree and the cache refills through the normal hot-key path.
func (n *Node) RestartController(rebuild bool) error {
	if !n.hasCtl {
		return fmt.Errorf("fabric: %s: no controller installed", n.Name)
	}
	if !rebuild {
		for _, ie := range n.Switch.DumpCache() {
			if _, err := n.Switch.RemoveCacheEntry(ie.Key, ie.KeyIndex); err != nil {
				return fmt.Errorf("fabric: %s: %w", n.Name, err)
			}
		}
	}
	ctl, err := controller.New(n.ctlCfg)
	if err != nil {
		return fmt.Errorf("fabric: %s: %w", n.Name, err)
	}
	if rebuild {
		if err := ctl.AdoptFromSwitch(); err != nil {
			return fmt.Errorf("fabric: %s: %w", n.Name, err)
		}
	}
	n.Controller = ctl
	return nil
}

// Reboot power-cycles the switch: all match tables and register arrays are
// wiped. The node immediately re-provisions the routing table (the switch
// OS restoring its startup config), so traffic flows again with every read
// falling through; the cache stays empty until the controller's next Tick.
func (n *Node) Reboot() error {
	n.Switch.Reboot()
	for _, rt := range n.routes {
		if err := n.Switch.InstallRoute(rt.addr, rt.port); err != nil {
			return fmt.Errorf("fabric: %s: reboot re-provision: %w", n.Name, err)
		}
	}
	return nil
}

// Tick runs one controller cycle, first waiting for in-flight hot-key
// digests so the cycle sees all the traffic that preceded it. A node
// without a controller just syncs digests.
func (n *Node) Tick() {
	n.Switch.SyncDigests()
	if n.Controller != nil {
		n.Controller.Tick()
	}
}

// RegisterStats registers the node's metric sources in reg, named under
// prefix ("" for a single-node topology): "<prefix>switch" (cumulative
// pipeline counters), "<prefix>net" (simnet delivery and fault-injection
// counters), "<prefix>server<port>" per attached server, and
// "<prefix>controller" when one is installed. Sources resolve lazily at
// each Snapshot, so a controller replaced by RestartController is followed
// automatically; servers are registered at attach time and survive
// crash/restart because the process object is reused.
func (n *Node) RegisterStats(reg *stats.Registry, prefix string) {
	if prefix != "" {
		prefix += "."
	}
	reg.Register(prefix+"switch", func() any {
		c := n.Switch.Pipeline().Stats()
		return &c
	})
	reg.Register(prefix+"net", func() any { return n.Net })
	for port, srv := range n.servers {
		srv := srv
		reg.Register(fmt.Sprintf("%sserver%d", prefix, port), func() any { return &srv.Metrics })
		reg.Register(fmt.Sprintf("%sserver%d.store", prefix, port), func() any { return srv.StoreStats() })
	}
	reg.Register(prefix+"controller", func() any {
		if n.Controller == nil {
			return nil
		}
		return &n.Controller.Metrics
	})
}

// SetTrace installs query-trace taps on the node's switch and every
// attached server, labeled by node name and server port. A nil ring
// removes them.
func (n *Node) SetTrace(ring *qtrace.Ring) {
	n.Switch.SetTrace(ring.Tap(n.Name))
	for port, srv := range n.servers {
		srv.SetTrace(ring.Tap(fmt.Sprintf("%s/server%d", n.Name, port)))
	}
}

// CrashServer crashes the server attached at port: its process state is
// discarded and its link goes down, so in-flight and future frames toward
// it vanish.
func (n *Node) CrashServer(port int) {
	if srv, ok := n.servers[port]; ok {
		srv.Crash()
		n.Net.SetPortDown(port, true)
	}
}

// RestartServer brings a crashed server back, optionally wiping its store
// (a replacement node instead of a process restart), and restores its link.
func (n *Node) RestartServer(port int, wipeStore bool) {
	if srv, ok := n.servers[port]; ok {
		srv.Restart(wipeStore)
		n.Net.SetPortDown(port, false)
	}
}
