package qtrace

import (
	"testing"

	"netcache/internal/netproto"
)

func TestRingWrapAround(t *testing.T) {
	r := NewRing(4)
	var key netproto.Key
	for i := 0; i < 7; i++ {
		r.Tap("n").Record(ClientSend, netproto.OpGet, uint64(i), key, false, false)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 7 {
		t.Fatalf("Total = %d, want 7", r.Total())
	}
	recs := r.Records()
	for i, rec := range recs {
		if want := uint64(3 + i); rec.Seq != want {
			t.Errorf("record %d: seq = %d, want %d (oldest-first)", i, rec.Seq, want)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Errorf("Len after Reset = %d", r.Len())
	}
	// Refill after reset must not resurface stale entries.
	r.Tap("n").Record(ClientRecv, netproto.OpGetReply, 99, key, true, false)
	recs = r.Records()
	if len(recs) != 1 || recs[0].Seq != 99 || !recs[0].Retransmit {
		t.Errorf("post-reset records = %+v", recs)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Ring
	var key netproto.Key
	// Every operation on a nil ring / nil tap is a no-op, not a panic.
	r.Tap("x").Record(ServerGet, netproto.OpGet, 1, key, false, true)
	if r.Len() != 0 || r.Total() != 0 || r.Records() != nil {
		t.Error("nil ring should be empty")
	}
	r.Reset()

	var tap *Tap
	tap.Record(SwitchHit, netproto.OpGetReply, 2, key, false, false)
}

func TestStageString(t *testing.T) {
	if ClientSend.String() != "client_send" || SwitchMiss.String() != "switch_miss" {
		t.Error("stage names wrong")
	}
	if Stage(200).String() == "" {
		t.Error("unknown stage should still render")
	}
}

func TestRecordString(t *testing.T) {
	r := NewRing(2)
	var key netproto.Key
	key[0] = 0xab
	r.Tap("client0").Record(ClientHedge, netproto.OpGet, 5, key, false, true)
	s := r.Records()[0].String()
	if s == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"client0", "client_hedge", "op=get", "seq=5", "hedge"} {
		if !contains(s, want) {
			t.Errorf("render %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
