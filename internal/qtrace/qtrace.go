// Package qtrace is an opt-in, bounded query-trace facility: components
// append per-query hop records (client send → switch hit/miss → server →
// reply) into a shared ring buffer. Tracing is wired through per-component
// Tap pointers held in atomics, so the disabled path costs one atomic load
// and a nil branch per packet — cheap enough to leave the hooks compiled in
// on the data plane.
package qtrace

import (
	"fmt"
	"sync"
	"time"

	"netcache/internal/netproto"
)

// Stage identifies where in a query's life a record was taken.
type Stage uint8

const (
	ClientSend Stage = iota
	ClientRetransmit
	ClientHedge
	ClientRecv
	ClientTimeout
	SwitchHit
	SwitchMiss
	SwitchWrite
	ServerGet
	ServerWrite
)

var stageNames = [...]string{
	ClientSend:       "client_send",
	ClientRetransmit: "client_retransmit",
	ClientHedge:      "client_hedge",
	ClientRecv:       "client_recv",
	ClientTimeout:    "client_timeout",
	SwitchHit:        "switch_hit",
	SwitchMiss:       "switch_miss",
	SwitchWrite:      "switch_write",
	ServerGet:        "server_get",
	ServerWrite:      "server_write",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Record is one hop observation for one query.
type Record struct {
	When       time.Time
	Node       string // "client3", "tor0", "server2" — assigned by the Tap
	Stage      Stage
	Op         netproto.Op
	Seq        uint64
	Key        netproto.Key
	Retransmit bool
	Hedge      bool
}

func (r Record) String() string {
	flags := ""
	if r.Retransmit {
		flags += " retx"
	}
	if r.Hedge {
		flags += " hedge"
	}
	return fmt.Sprintf("%s %-12s %-17s op=%s seq=%d key=%x%s",
		r.When.Format("15:04:05.000000"), r.Node, r.Stage, opName(r.Op), r.Seq, r.Key[:4], flags)
}

// opName names the query opcodes a trace can carry; hop stages already say
// which side of the exchange a record is, so replies never reach a tap.
func opName(op netproto.Op) string {
	switch op {
	case netproto.OpGet:
		return "get"
	case netproto.OpPut:
		return "put"
	case netproto.OpDelete:
		return "del"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// Ring is a fixed-capacity trace buffer: once full, new records overwrite
// the oldest. A nil *Ring is valid and drops everything, so components can
// hold taps unconditionally.
type Ring struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	total uint64
}

// NewRing returns a ring holding up to capacity records.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Record, 0, capacity)}
}

func (r *Ring) add(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Records returns the buffered records oldest-first.
func (r *Ring) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// Len returns the number of buffered records.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns how many records were ever added, including overwritten ones.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Reset drops all buffered records (capacity is kept).
func (r *Ring) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.mu.Unlock()
}

// Tap returns a component-local tap writing into the ring with the given
// node label. A nil receiver returns a nil tap, which records nothing —
// callers store the result in an atomic.Pointer and never nil-check twice.
func (r *Ring) Tap(node string) *Tap {
	if r == nil {
		return nil
	}
	return &Tap{ring: r, node: node}
}

// Tap stamps records with its node name and forwards them to the ring.
type Tap struct {
	ring *Ring
	node string
}

// Record appends one observation. Safe on a nil tap (no-op).
func (t *Tap) Record(stage Stage, op netproto.Op, seq uint64, key netproto.Key, retransmit, hedge bool) {
	if t == nil {
		return
	}
	t.ring.add(Record{
		When:       time.Now(),
		Node:       t.node,
		Stage:      stage,
		Op:         op,
		Seq:        seq,
		Key:        key,
		Retransmit: retransmit,
		Hedge:      hedge,
	})
}
