package netcache

import (
	"encoding/json"
	"testing"
)

// One Snapshot() call on a rack must return every component's counters plus
// the clients' per-op latency percentiles — the observability acceptance
// criterion for the single-node topology.
func TestFacadeSnapshotRack(t *testing.T) {
	r := newRack(t)
	r.LoadDataset(50, 32)
	cli := r.Client(0)
	hot := KeyName(1)
	for i := 0; i < 20; i++ {
		if _, err := cli.Get(hot); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Put(hot, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Delete(KeyName(2)); err != nil {
		t.Fatal(err)
	}
	r.Tick()

	snap := r.Snapshot()

	// Every component family must be represented.
	for _, name := range []string{
		"switch.rx_packets", "switch.tx_packets",
		"net.delivered",
		"server0.gets",
		"controller.inserts",
		"client0.sent",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("snapshot missing counter %q (have %v)", name, snap.Keys())
		}
	}
	if snap.Counters["client0.sent"] == 0 || snap.Counters["switch.rx_packets"] == 0 {
		t.Error("traffic counters should be nonzero after queries")
	}

	// Per-op latency percentiles, with the fixed-quantile invariant.
	for _, name := range []string{"client0.get_latency", "client0.put_latency", "client0.delete_latency"} {
		hs, ok := snap.Histograms[name]
		if !ok {
			t.Fatalf("snapshot missing histogram %q (have %v)", name, snap.HistKeys())
		}
		if hs.Count == 0 || hs.P50 <= 0 || hs.P99 <= 0 || hs.Max <= 0 {
			t.Errorf("%s = %+v, want populated percentiles", name, hs)
		}
		if hs.P99 > hs.Max {
			t.Errorf("%s: p99 %f exceeds max %f", name, hs.P99, hs.Max)
		}
	}

	// The whole view must serialize.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

// The leaf-spine snapshot must cover both tiers from one call, and the
// per-tier slices must line up with it.
func TestFacadeSnapshotLeafSpine(t *testing.T) {
	fb, err := NewLeafSpine(LeafSpineConfig{
		Racks: 2, ServersPerRack: 2, Clients: 1, SpineCache: 8, TorCache: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	fb.LoadDataset(40, 32)
	cli := fb.Client(0)
	for i := 0; i < 10; i++ {
		if _, err := cli.Get(KeyName(i)); err != nil {
			t.Fatal(err)
		}
	}

	snap := fb.Snapshot()
	for _, name := range []string{
		"spine.switch.rx_packets", "spine.net.delivered",
		"tor0.switch.rx_packets", "tor0.server0.gets",
		"tor1.switch.rx_packets",
		"client0.sent",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("fabric snapshot missing %q", name)
		}
	}
	if hs, ok := snap.Histograms["client0.get_latency"]; !ok || hs.Count == 0 {
		t.Errorf("fabric snapshot missing client latency: %+v", hs)
	}

	spine := fb.SpineSnapshot()
	if spine.Counters["switch.rx_packets"] != snap.Counters["spine.switch.rx_packets"] {
		t.Error("SpineSnapshot slice disagrees with fabric snapshot")
	}
	tor0 := fb.TorSnapshot(0)
	if tor0.Counters["server0.gets"] != snap.Counters["tor0.server0.gets"] {
		t.Error("TorSnapshot slice disagrees with fabric snapshot")
	}
}

// A traced GET must leave a coherent hop chain in the ring: client send,
// a switch classification (hit or miss), a server stage for misses, and
// the client receive. Disabling must stop recording.
func TestFacadeQueryTrace(t *testing.T) {
	r := newRack(t)
	r.LoadDataset(10, 32)
	ring := r.EnableTrace(128)

	cli := r.Client(0)
	key := KeyName(0)
	if _, err := cli.Get(key); err != nil {
		t.Fatal(err)
	}
	if err := cli.Put(key, []byte("traced")); err != nil {
		t.Fatal(err)
	}

	stages := map[string]bool{}
	for _, rec := range ring.Records() {
		stages[rec.Stage.String()] = true
	}
	for _, want := range []string{"client_send", "switch_miss", "server_get", "client_recv", "switch_write", "server_write"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, stages)
		}
	}

	r.DisableTrace()
	before := ring.Total()
	if _, err := cli.Get(key); err != nil {
		t.Fatal(err)
	}
	if ring.Total() != before {
		t.Error("trace still recording after DisableTrace")
	}

	// A cache hit must classify as switch_hit with no server hop.
	r.Tick() // not sufficient alone; install via controller path
	hot := KeyName(3)
	for i := 0; i < 20; i++ {
		if _, err := cli.Get(hot); err != nil {
			t.Fatal(err)
		}
	}
	r.Tick()
	if !r.Cached(hot) {
		t.Fatal("hot key not cached")
	}
	ring2 := r.EnableTrace(64)
	if _, err := cli.Get(hot); err != nil {
		t.Fatal(err)
	}
	sawHit := false
	for _, rec := range ring2.Records() {
		if rec.Stage.String() == "switch_hit" {
			sawHit = true
		}
		if rec.Stage.String() == "server_get" {
			t.Error("cache-hit GET should not reach a server")
		}
	}
	if !sawHit {
		t.Error("cached GET not classified as switch_hit")
	}
}
