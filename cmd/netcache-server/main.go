// Command netcache-server runs one NetCache storage server: the in-memory
// key-value store behind the server-agent shim that speaks the NetCache
// protocol and keeps the switch cache coherent on writes.
//
// Usage:
//
//	netcache-server -switch 127.0.0.1:9000 -addr 1 [-shards 4]
//	                [-preload 1000] [-valuesize 64]
//	                [-telemetry-addr 127.0.0.1:9180]
//
// -telemetry-addr serves the live telemetry plane over HTTP: /metrics
// (Prometheus text), /snapshot (JSON counters plus windowed rates),
// /debug/pprof. See DESIGN.md §13.
//
// -addr is this server's rack address (1..N); clients partition the
// keyspace over these addresses. -preload fills the store with the shared
// deterministic dataset so a fleet started with the same flags agrees on
// contents.
package main

import (
	"flag"
	"log"
	"time"

	"netcache/internal/client"
	"netcache/internal/netproto"
	"netcache/internal/server"
	"netcache/internal/stats"
	"netcache/internal/telemetry"
	"netcache/internal/udptrans"
	"netcache/internal/workload"
)

func main() {
	swAddr := flag.String("switch", "127.0.0.1:9000", "switch daemon UDP address")
	addr := flag.Int("addr", 1, "this server's rack address (1..N)")
	shards := flag.Int("shards", 4, "store shards (per-core sharding)")
	engine := flag.String("engine", "chained", "storage engine: chained or cuckoo")
	preload := flag.Int("preload", 0, "preload this many dataset items owned by this server")
	servers := flag.Int("servers", 1, "total servers in the rack (for -preload ownership)")
	valueSize := flag.Int("valuesize", 64, "preloaded value size in bytes")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /snapshot, /debug/pprof on this HTTP address (empty disables)")
	flag.Parse()

	if *addr < 1 || *addr >= 0x8000 {
		log.Fatalf("netcache-server: -addr must be in [1, 32767]")
	}
	srv := server.New(server.Config{Addr: netproto.Addr(*addr), Shards: *shards, Engine: *engine})

	if *telemetryAddr != "" {
		reg := stats.NewRegistry()
		reg.Register("server", func() any { return &srv.Metrics })
		reg.Register("server.store", func() any { return srv.StoreStats() })
		mon := stats.NewMonitor(stats.MonitorConfig{Registry: reg})
		mon.Start()
		defer mon.Stop()
		ts := telemetry.New(telemetry.Config{Registry: reg, Monitor: mon})
		bound, err := ts.Start(*telemetryAddr)
		if err != nil {
			log.Fatalf("netcache-server: %v", err)
		}
		defer ts.Close()
		log.Printf("netcache-server: telemetry on http://%v/metrics", bound)
	}

	ep, err := udptrans.Dial(*swAddr)
	if err != nil {
		log.Fatalf("netcache-server: %v", err)
	}
	defer ep.Close()
	srv.SetSend(ep.Send)

	if *preload > 0 {
		owned := 0
		for id := 0; id < *preload; id++ {
			key := workload.KeyName(id)
			if client.PartitionOf(key, *servers)+1 != *addr {
				continue
			}
			srv.Store().Put(key, workload.ValueFor(id, *valueSize))
			owned++
		}
		log.Printf("netcache-server: preloaded %d of %d items owned by addr %d", owned, *preload, *addr)
	}

	// Teach the switch our address before any traffic targets us, and
	// keep re-announcing: a single Hello can race the switch's startup or
	// be lost, leaving this server unreachable.
	stopHello := ep.StartHello(netproto.Addr(*addr), 2*time.Second)
	defer stopHello()
	log.Printf("netcache-server: addr %d serving via switch %s (%d shards, %s engine)", *addr, *swAddr, *shards, *engine)
	if err := ep.Run(srv.Receive); err != nil {
		log.Fatalf("netcache-server: %v", err)
	}
}
