// Command netcache-switch runs the NetCache ToR switch as a userspace UDP
// daemon: the compiled data-plane pipeline plus the cache controller.
//
// It binds one UDP socket, learns which endpoint backs each rack address
// from the traffic (like an L2 learning switch), serves cache-hit reads
// directly, forwards everything else, and promotes heavy hitters into the
// cache every controller cycle.
//
// Usage:
//
//	netcache-switch -listen 127.0.0.1:9000 [-cache 1024] [-cycle 1s] [-quiet]
package main

import (
	"flag"
	"log"

	"netcache/internal/switchcore"
	"netcache/internal/udptrans"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "UDP address to bind")
	cache := flag.Int("cache", 0, "cache capacity in items (0 = switch limit)")
	cycle := flag.Duration("cycle", 0, "controller cycle period (0 = 1s)")
	paper := flag.Bool("paper", false, "use the paper-scale 64K-item program")
	quiet := flag.Bool("quiet", false, "suppress operational logging")
	flag.Parse()

	cfg := udptrans.SwitchConfig{
		Listen:        *listen,
		CacheCapacity: *cache,
		Cycle:         *cycle,
	}
	if *paper {
		cfg.Switch = switchcore.PaperConfig()
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	d, err := udptrans.NewSwitch(cfg)
	if err != nil {
		log.Fatalf("netcache-switch: %v", err)
	}
	rep := d.Switch().ResourceReport()
	log.Printf("netcache-switch: listening on %v, pipeline compiled (%.1f%% SRAM)",
		d.Addr(), 100*rep.SRAMFraction())
	if err := d.Run(); err != nil {
		log.Fatalf("netcache-switch: %v", err)
	}
}
