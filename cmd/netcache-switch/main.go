// Command netcache-switch runs the NetCache ToR switch as a userspace UDP
// daemon: the compiled data-plane pipeline plus the cache controller.
//
// It binds one UDP socket, learns which endpoint backs each rack address
// from the traffic (like an L2 learning switch), serves cache-hit reads
// directly, forwards everything else, and promotes heavy hitters into the
// cache every controller cycle.
//
// Usage:
//
//	netcache-switch -listen 127.0.0.1:9000 [-cache 1024] [-cycle 1s] [-quiet]
//	                [-telemetry-addr 127.0.0.1:9181]
//
// -telemetry-addr serves the live telemetry plane over HTTP: /metrics
// (Prometheus text: pipeline and controller counters, per-server
// forwarded-query load as server<addr>.*, and the derived balance.*
// analytics over it), /snapshot (JSON with windowed rates), /debug/pprof.
// See DESIGN.md §13.
package main

import (
	"flag"
	"log"

	"netcache/internal/balance"
	"netcache/internal/stats"
	"netcache/internal/switchcore"
	"netcache/internal/telemetry"
	"netcache/internal/udptrans"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "UDP address to bind")
	cache := flag.Int("cache", 0, "cache capacity in items (0 = switch limit)")
	cycle := flag.Duration("cycle", 0, "controller cycle period (0 = 1s)")
	paper := flag.Bool("paper", false, "use the paper-scale 64K-item program")
	quiet := flag.Bool("quiet", false, "suppress operational logging")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /snapshot, /debug/pprof on this HTTP address (empty disables)")
	flag.Parse()

	cfg := udptrans.SwitchConfig{
		Listen:        *listen,
		CacheCapacity: *cache,
		Cycle:         *cycle,
	}
	if *paper {
		cfg.Switch = switchcore.PaperConfig()
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	var reg *stats.Registry
	if *telemetryAddr != "" {
		// Handed to the daemon so it can register one server<addr> source
		// per learned storage server (forwarded-query load), which the
		// balance.* analytics below aggregate.
		reg = stats.NewRegistry()
		cfg.Registry = reg
	}
	d, err := udptrans.NewSwitch(cfg)
	if err != nil {
		log.Fatalf("netcache-switch: %v", err)
	}
	if reg != nil {
		reg.Register("switch", func() any {
			c := d.Switch().Pipeline().Stats()
			return &c
		})
		reg.Register("controller", func() any { return &d.Controller().Metrics })
		balance.RegisterOn(reg)
		mon := stats.NewMonitor(stats.MonitorConfig{Registry: reg})
		mon.Start()
		defer mon.Stop()
		ts := telemetry.New(telemetry.Config{Registry: reg, Monitor: mon})
		bound, err := ts.Start(*telemetryAddr)
		if err != nil {
			log.Fatalf("netcache-switch: %v", err)
		}
		defer ts.Close()
		log.Printf("netcache-switch: telemetry on http://%v/metrics", bound)
	}
	rep := d.Switch().ResourceReport()
	log.Printf("netcache-switch: listening on %v, pipeline compiled (%.1f%% SRAM)",
		d.Addr(), 100*rep.SRAMFraction())
	if err := d.Run(); err != nil {
		log.Fatalf("netcache-switch: %v", err)
	}
}
