// Command netcache-client talks to a NetCache rack over UDP: one-shot
// get/put/del operations, a Zipf load generator, and switch statistics.
//
// Usage:
//
//	netcache-client -switch 127.0.0.1:9000 -servers 2 get user:42
//	netcache-client -switch 127.0.0.1:9000 -servers 2 put user:42 alice
//	netcache-client -switch 127.0.0.1:9000 -servers 2 del user:42
//	netcache-client -switch 127.0.0.1:9000 -servers 2 \
//	    bench -n 50000 -keys 10000 -theta 0.99 -writes 0.05
//	netcache-client -switch 127.0.0.1:9000 -servers 2 \
//	    bench -n 50000 -record /tmp/run.trace     # record while benching
//	netcache-client -switch 127.0.0.1:9000 -servers 2 \
//	    replay -trace /tmp/run.trace              # byte-identical replay
//	netcache-client -switch 127.0.0.1:9000 stats
//
// The bench subcommand preloads nothing: run the servers with -preload so
// the dataset exists, then drive the Zipf workload against it and watch the
// switch absorb the head (compare "stats" before and after a controller
// cycle).
//
// The client is storage-agnostic: the storage engine backing a deployment
// ("chained" or "cuckoo") is selected server-side with netcache-server
// -engine, and for in-process experiments with netcache-bench -engine.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"netcache/internal/client"
	"netcache/internal/netproto"
	"netcache/internal/udptrans"
	"netcache/internal/workload"
)

func main() {
	swAddr := flag.String("switch", "127.0.0.1:9000", "switch daemon UDP address")
	servers := flag.Int("servers", 1, "number of storage servers (addresses 1..N)")
	myAddr := flag.Int("addr", 0x8001, "this client's rack address (>= 0x8000)")
	timeout := flag.Duration("timeout", 50*time.Millisecond, "per-attempt reply timeout (initial RTO when adaptive)")
	fixedRTO := flag.Bool("fixed-rto", false, "disable adaptive RTT-estimated retransmission timeouts")
	hedge := flag.Bool("hedge", false, "hedge reads after the observed P99 reply latency")
	// Real-UDP deployments share the host (and often a single CPU) with the
	// switch and server processes, so scheduling noise puts the achievable
	// RTT well above the in-process simnet floor. A floor below that noise
	// level locks the estimator into a spurious-retransmit storm: Karn's
	// rule then only admits the unusually fast replies, which keeps SRTT
	// biased low (the same survivorship bias that motivates TCP's 1 s
	// minimum RTO). 5 ms also clears Policy.SpinUnder, so waits park in the
	// scheduler instead of busy-polling the CPU the servers need.
	rtoFloor := flag.Duration("rto-floor", 5*time.Millisecond, "minimum adaptive retransmission timeout")
	window := flag.Int("window", 1, "pipelining depth: reads issued through GetBatch with this many outstanding (bench subcommand; 1 = one at a time)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	ep, err := udptrans.Dial(*swAddr)
	if err != nil {
		log.Fatalf("netcache-client: %v", err)
	}
	defer ep.Close()

	addrs := make([]netproto.Addr, *servers)
	for i := range addrs {
		addrs[i] = netproto.Addr(i + 1)
	}
	cli, err := client.New(client.Config{
		Addr:      netproto.Addr(*myAddr),
		Partition: client.HashPartitioner(addrs),
		Timeout:   *timeout,
		Retries:   5,
		Policy:    client.Policy{FixedRTO: *fixedRTO, Hedge: *hedge, RTOFloor: *rtoFloor},
		Window:    *window,
	})
	if err != nil {
		log.Fatalf("netcache-client: %v", err)
	}
	cli.SetSend(ep.Send)
	// Batched bursts coalesce into batch datagrams on the wire.
	cli.SetSendBatch(ep.SendBatch)
	// The reply reader is started per command: data commands feed the
	// client library; stats feeds its own matcher (one reader per socket).
	startClient := func() { go ep.Run(cli.Receive) }

	switch args[0] {
	case "get":
		startClient()
		need(args, 2)
		v, err := cli.Get(netproto.KeyFromString(args[1]))
		if err != nil {
			log.Fatalf("get: %v", err)
		}
		fmt.Printf("%s\n", v)
	case "put":
		startClient()
		need(args, 3)
		if err := cli.Put(netproto.KeyFromString(args[1]), []byte(args[2])); err != nil {
			log.Fatalf("put: %v", err)
		}
	case "del":
		startClient()
		need(args, 2)
		if err := cli.Delete(netproto.KeyFromString(args[1])); err != nil {
			log.Fatalf("del: %v", err)
		}
	case "bench":
		startClient()
		bench(cli, ep, *window, args[1:])
	case "replay":
		startClient()
		replay(cli, args[1:])
	case "stats":
		stats(ep, netproto.Addr(*myAddr))
	default:
		usage()
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: netcache-client [flags] get|put|del|bench|stats ...")
	os.Exit(2)
}

// bench drives a Zipf read/write mix and reports latency and the switch's
// share of the replies. With -window > 1, reads accumulate into GetBatch
// windows (writes flush the pending window first, preserving order).
func bench(cli *client.Client, ep *udptrans.Endpoint, window int, args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	n := fs.Int("n", 10000, "queries to send")
	keys := fs.Int("keys", 10000, "keyspace size (dataset ids)")
	theta := fs.Float64("theta", 0.99, "Zipf skew (0 = uniform)")
	writes := fs.Float64("writes", 0, "write ratio")
	record := fs.String("record", "", "also record the query stream to this trace file")
	fs.Parse(args)

	zipf, err := workload.NewZipf(*keys, *theta)
	if err != nil {
		log.Fatalf("bench: %v", err)
	}
	var tw *workload.TraceWriter
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatalf("bench: %v", err)
		}
		defer f.Close()
		if tw, err = workload.NewTraceWriter(f); err != nil {
			log.Fatalf("bench: %v", err)
		}
		defer tw.Flush()
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var ok, misses, errs int
	count := func(err error) {
		switch err {
		case nil:
			ok++
		case client.ErrNotFound:
			misses++
		default:
			errs++
		}
	}
	var batch []netproto.Key
	if window > 1 {
		batch = make([]netproto.Key, 0, window)
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		_, batchErrs := cli.GetBatch(batch)
		for _, err := range batchErrs {
			count(err)
		}
		batch = batch[:0]
	}
	start := time.Now()
	for i := 0; i < *n; i++ {
		id := zipf.SampleRank(rng)
		q := workload.Query{Key: id, Write: *writes > 0 && rng.Float64() < *writes}
		if tw != nil {
			tw.Append(q)
		}
		key := workload.KeyName(id)
		switch {
		case q.Write:
			flush()
			count(cli.Put(key, workload.ValueFor(id, 64)))
		case window > 1:
			if batch = append(batch, key); len(batch) == window {
				flush()
			}
		default:
			_, err = cli.Get(key)
			count(err)
		}
	}
	flush()
	el := time.Since(start)
	fmt.Printf("bench: %d queries in %v (%.0f qps), %d ok, %d not-found, %d errors\n",
		*n, el.Round(time.Millisecond), float64(*n)/el.Seconds(), ok, misses, errs)
	fmt.Printf("bench: client retransmits=%d timeouts=%d\n",
		cli.Metrics.Retransmit.Value(), cli.Metrics.Timeouts.Value())
}

// replay drives a previously recorded trace against the rack.
func replay(cli *client.Client, args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	trace := fs.String("trace", "", "trace file to replay (required)")
	fs.Parse(args)
	if *trace == "" {
		log.Fatal("replay: -trace is required")
	}
	f, err := os.Open(*trace)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	defer f.Close()
	var ok, misses, errs, n int
	start := time.Now()
	err = workload.Replay(f, func(q workload.Query) error {
		n++
		key := workload.KeyName(q.Key)
		var err error
		if q.Write {
			err = cli.Put(key, workload.ValueFor(q.Key, 64))
		} else {
			_, err = cli.Get(key)
		}
		switch err {
		case nil:
			ok++
		case client.ErrNotFound:
			misses++
		default:
			errs++
		}
		return nil
	})
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	el := time.Since(start)
	fmt.Printf("replay: %d queries in %v (%.0f qps), %d ok, %d not-found, %d errors\n",
		n, el.Round(time.Millisecond), float64(n)/el.Seconds(), ok, misses, errs)
}

// stats queries the switch daemon's counters.
func stats(ep *udptrans.Endpoint, self netproto.Addr) {
	pkt := netproto.Packet{Op: netproto.OpCtlStats, Seq: uint64(time.Now().UnixNano())}
	payload, _ := pkt.Marshal()

	reply := make(chan netproto.Packet, 1)
	go ep.Run(func(frame []byte) {
		fr, err := netproto.DecodeFrame(frame)
		if err != nil {
			return
		}
		var p netproto.Packet
		if netproto.Decode(fr.Payload, &p) == nil && p.Op == netproto.OpCtlStatsReply && p.Seq == pkt.Seq {
			p.Value = append([]byte(nil), p.Value...)
			select {
			case reply <- p:
			default:
			}
		}
	})

	for attempt := 0; attempt < 5; attempt++ {
		ep.Send(netproto.MarshalFrame(udptrans.CtlAddr, self, payload))
		select {
		case p := <-reply:
			if len(p.Value) < 40 {
				log.Fatalf("stats: short reply")
			}
			names := []string{"rx_packets", "tx_packets", "cache_hits", "hot_reports", "cached_items"}
			for i, name := range names {
				fmt.Printf("%-13s %d\n", name, binary.BigEndian.Uint64(p.Value[8*i:]))
			}
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
	log.Fatal("stats: no reply from switch")
}
