// Command netcache-bench regenerates the NetCache paper's evaluation
// (SOSP'17 §7): one table per figure, printed in the order of the paper.
//
// Usage:
//
//	netcache-bench [-exp all|fig9a|...|resources] [-quick] [-list]
//
// Figure 9 and 11 experiments execute real packets through the compiled
// switch pipeline; Figure 10 experiments evaluate the calibrated capacity
// models (see DESIGN.md and EXPERIMENTS.md for the methodology and the
// paper-vs-measured record).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"netcache/internal/client"
	"netcache/internal/harness"
	_ "netcache/internal/queuesim" // registers the fig10c-sim latency experiment
	"netcache/internal/telemetry"
	_ "netcache/internal/topo" // registers the fig10f scalability model
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run, or 'all'")
	quick := flag.Bool("quick", false, "trade precision for runtime")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "table", "output format: table or csv")
	loss := flag.Float64("loss", harness.ChaosParams.Loss, "chaosbench/multirack: per-frame loss probability")
	dup := flag.Float64("dup", harness.ChaosParams.Dup, "chaosbench/multirack: per-frame duplication probability")
	reorder := flag.Float64("reorder", harness.ChaosParams.Reorder, "chaosbench/multirack: per-frame reorder probability")
	corrupt := flag.Float64("corrupt", harness.ChaosParams.Corrupt, "chaosbench/multirack: per-frame corruption probability")
	rebootEvery := flag.Int("reboot-every", harness.ChaosParams.RebootEvery, "chaosbench/multirack: reboot interval in ops (0 disables)")
	rtoFloor := flag.Duration("rto-floor", harness.ChaosPolicy.RTOFloor, "chaosbench: adaptive RTO floor (0 = client default)")
	rtoCeil := flag.Duration("rto-ceil", harness.ChaosPolicy.RTOCeil, "chaosbench: adaptive RTO ceiling (0 = client default)")
	backoffMax := flag.Int("backoff-max", harness.ChaosPolicy.BackoffMax, "chaosbench: max exponential backoff doublings (0 = client default)")
	jitterFrac := flag.Float64("jitter-frac", harness.ChaosPolicy.JitterFrac, "chaosbench: RTO jitter fraction (0 = client default, negative disables)")
	hedge := flag.Bool("hedge", harness.ChaosPolicy.Hedge, "chaosbench: enable hedged reads on the adaptive rows")
	clientSeed := flag.Uint64("client-seed", harness.ChaosPolicy.Seed, "chaosbench: seed for the clients' retransmission jitter")
	window := flag.Int("window", harness.ChaosWindow, "chaosbench/multirack: pipelining depth of the batched rows (1 disables)")
	racks := flag.Int("racks", harness.MultiRackParams.Racks, "multirack: number of racks in the leaf-spine fabric")
	serversPerRack := flag.Int("servers-per-rack", harness.MultiRackParams.ServersPerRack, "multirack: storage servers per rack")
	spineCache := flag.Int("spine-cache", harness.MultiRackParams.SpineCache, "multirack: spine switch cache capacity")
	torCache := flag.Int("tor-cache", harness.MultiRackParams.TorCache, "multirack: per-ToR switch cache capacity")
	statsEvery := flag.Duration("stats-every", 0, "chaosbench: dump one windowed-rate SNAPSHOT line (JSON, stderr) per period (0 disables)")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /snapshot, /trace, /debug/pprof on this HTTP address while experiments run (empty disables)")
	trace := flag.Int("trace", 0, "chaosbench: enable query tracing with a ring of this many records; tail dumped to stderr per row (0 disables)")
	engine := flag.String("engine", "", "storage engine for every packet-level experiment: chained or cuckoo (empty = chained)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
	flag.Parse()
	harness.ChaosParams = harness.FaultParams{
		Loss: *loss, Dup: *dup, Reorder: *reorder, Corrupt: *corrupt,
		RebootEvery: *rebootEvery,
	}
	harness.ChaosPolicy = client.Policy{
		RTOFloor: *rtoFloor, RTOCeil: *rtoCeil, BackoffMax: *backoffMax,
		JitterFrac: *jitterFrac, Hedge: *hedge, Seed: *clientSeed,
	}
	harness.ChaosWindow = *window
	harness.StatsEvery = *statsEvery
	harness.ChaosTrace = *trace
	if *telemetryAddr != "" {
		ts := telemetry.New(telemetry.Config{})
		bound, err := ts.Start(*telemetryAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "netcache-bench: %v\n", err)
			os.Exit(1)
		}
		defer ts.Close()
		harness.Telemetry = ts
		fmt.Fprintf(os.Stderr, "netcache-bench: telemetry on http://%v/metrics (sources attach as experiments run)\n", bound)
	}
	switch *engine {
	case "", "chained", "cuckoo":
	default:
		fmt.Fprintf(os.Stderr, "netcache-bench: unknown -engine %q (want chained or cuckoo)\n", *engine)
		os.Exit(2)
	}
	harness.StorageEngine = *engine
	harness.MultiRackParams.Racks = *racks
	harness.MultiRackParams.ServersPerRack = *serversPerRack
	harness.MultiRackParams.SpineCache = *spineCache
	harness.MultiRackParams.TorCache = *torCache

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		defer func() {
			f, err := os.Create(*mutexProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			pprof.Lookup("mutex").WriteTo(f, 0)
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // flush the final allocations into the profile
			pprof.Lookup("allocs").WriteTo(f, 0)
		}()
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	run := func(e harness.Experiment) error {
		start := time.Now()
		tb, err := e.Run(*quick)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *format == "csv" {
			fmt.Printf("# %s: %s\n", tb.ID, tb.Title)
			tb.Fcsv(os.Stdout)
			fmt.Println()
			return nil
		}
		tb.Fprint(os.Stdout)
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *exp == "all" {
		for _, e := range harness.Experiments() {
			if err := run(e); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := harness.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if err := run(e); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
