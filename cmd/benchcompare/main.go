// Command benchcompare guards the packet path against performance
// regressions without external tooling. It reads fresh `go test -bench
// -benchmem` output on stdin, matches each benchmark by name against a
// committed baseline in the benchjson format (BENCH_pipeline.json), prints
// the per-benchmark ns/op deltas, and exits non-zero when the geometric
// mean of the new/old ratios exceeds the tolerance:
//
//	go test -bench 'Pipeline' -benchmem . | \
//	    go run ./cmd/benchcompare -baseline BENCH_pipeline.json
//
// The geomean — not any single benchmark — is the gate: individual ns/op
// numbers on a shared CI box jitter by tens of percent, but the mean ratio
// across the whole suite moves far less, so a >10% geomean shift is a real
// regression, not noise. Benchmarks present on only one side are reported
// and excluded from the verdict. Allocation counts are compared strictly:
// allocs/op are stable run to run, so any benchmark allocating more than
// its baseline fails the gate regardless of the geomean.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark measurement — the subset of the benchjson record
// the comparison needs.
type result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_pipeline.json", "benchjson baseline to compare against")
	tolerance := flag.Float64("tolerance", 0.10, "allowed geomean ns/op regression (0.10 = +10%)")
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
	fresh, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(1)
	}
	if len(fresh) == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no benchmark results on stdin")
		os.Exit(1)
	}

	var (
		logSum     float64
		compared   int
		allocFails []string
	)
	fmt.Printf("%-44s %12s %12s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, cur := range fresh {
		old, ok := base[cur.Name]
		if !ok {
			fmt.Printf("%-44s %12s %12.1f %8s\n", cur.Name, "-", cur.NsOp, "new")
			continue
		}
		delete(base, cur.Name)
		ratio := cur.NsOp / old.NsOp
		logSum += math.Log(ratio)
		compared++
		fmt.Printf("%-44s %12.1f %12.1f %+7.1f%%\n", cur.Name, old.NsOp, cur.NsOp, (ratio-1)*100)
		if cur.AllocsOp > old.AllocsOp {
			allocFails = append(allocFails,
				fmt.Sprintf("%s: %.0f allocs/op, baseline %.0f", cur.Name, cur.AllocsOp, old.AllocsOp))
		}
	}
	var missing []string
	for name := range base {
		missing = append(missing, name)
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Printf("%-44s %12s %12s %8s\n", name, "-", "-", "missing")
	}

	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no benchmark matched the baseline")
		os.Exit(1)
	}
	geomean := math.Exp(logSum / float64(compared))
	fmt.Printf("\ngeomean over %d benchmarks: %+.1f%% (tolerance %+.1f%%)\n",
		compared, (geomean-1)*100, *tolerance*100)
	failed := false
	if geomean > 1+*tolerance {
		fmt.Fprintf(os.Stderr, "benchcompare: geomean regression %+.1f%% exceeds tolerance\n", (geomean-1)*100)
		failed = true
	}
	for _, f := range allocFails {
		fmt.Fprintf(os.Stderr, "benchcompare: allocation regression: %s\n", f)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("ok: within tolerance, no allocation regressions")
}

// loadBaseline reads a benchjson file into a name-indexed map.
func loadBaseline(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]result, len(rs))
	for _, r := range rs {
		m[r.Name] = r
	}
	return m, nil
}

// parseBench extracts benchmark results from `go test -bench` output,
// stripping the -GOMAXPROCS suffix the same way benchjson does so the names
// line up with the baseline.
func parseBench(f *os.File) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		r := result{Name: fields[0]}
		if i := strings.LastIndexByte(r.Name, '-'); i >= 0 {
			if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name = r.Name[:i]
			}
		}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsOp, ok = v, true
			case "allocs/op":
				r.AllocsOp = v
			}
		}
		if ok && r.NsOp > 0 {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
