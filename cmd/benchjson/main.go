// Command benchjson converts `go test -bench -benchmem` output on stdin into
// a JSON array on stdout, one object per benchmark result:
//
//	go test -bench 'Pipeline' -benchmem . | go run ./cmd/benchjson > BENCH.json
//
// Each object carries the benchmark name (goroutine-count suffix stripped
// into its own field), ns/op, B/op, allocs/op, and a derived kops_s
// (1e6/ns_op): the operation rate in thousands per second, comparable across
// the sequential and parallel variants. Custom b.ReportMetric units (e.g.
// the failover bench's detect_ticks_max, failover_us_max) land in a
// "metrics" map keyed by unit; lines that are not benchmark results
// (headers, PASS) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name  string  `json:"name"`
	Procs int     `json:"procs,omitempty"` // -cpu suffix, 0 when absent
	Iters int64   `json:"iterations"`
	NsOp  float64 `json:"ns_op"`
	// B/op and allocs/op stay present when zero — zero is the result the
	// pooled path is asserting, not a missing datum.
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`
	KopsS    float64 `json:"kops_s"`
	// Metrics holds custom b.ReportMetric values keyed by their unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one `Benchmark...  N  X ns/op  [Y B/op  Z allocs/op] ...`
// line; ok is false for anything else.
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return result{}, false
	}
	r := result{Name: f[0]}
	// BenchmarkFoo-8 ran with GOMAXPROCS (or -cpu) 8.
	if i := strings.LastIndexByte(r.Name, '-'); i >= 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iters = iters
	// The remaining fields come in value-unit pairs.
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsOp, seen = v, true
		case "B/op":
			r.BOp = v
		case "allocs/op":
			r.AllocsOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	if !seen {
		return result{}, false
	}
	if r.NsOp > 0 {
		r.KopsS = 1e6 / r.NsOp
	}
	return r, true
}
