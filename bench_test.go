package netcache

// One benchmark per table/figure of the paper's evaluation (§7). Each bench
// regenerates its figure through the harness and reports the figure's
// headline quantities as custom metrics, so `go test -bench=.` doubles as
// the reproduction run. The full-precision figure data comes from
// `go run ./cmd/netcache-bench`; EXPERIMENTS.md records paper-vs-measured.

import (
	"sync/atomic"
	"testing"

	"netcache/internal/dataplane"
	"netcache/internal/harness"
	"netcache/internal/leafspine"
	"netcache/internal/netproto"
	"netcache/internal/rack"
	"netcache/internal/workload"
)

// runFigure executes the experiment once per iteration and returns the last
// table for metric extraction.
func runFigure(b *testing.B, id string, quick bool) *Table {
	b.Helper()
	var tb *Table
	var err error
	for i := 0; i < b.N; i++ {
		tb, err = RunExperiment(id, quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tb
}

func lastOf(v []float64) float64 { return v[len(v)-1] }

// BenchmarkFig9aValueSize: switch throughput vs value size (snake test).
// Paper: flat 2.24 BQPS for 64K items with values up to 128 B.
func BenchmarkFig9aValueSize(b *testing.B) {
	tb := runFigure(b, "fig9a", true)
	b.ReportMetric(tb.Col("modeled_BQPS")[0], "modeled_BQPS_min")
	b.ReportMetric(lastOf(tb.Col("modeled_BQPS")), "modeled_BQPS_max")
	b.ReportMetric(lastOf(tb.Col("measured_Mpps")), "measured_Mpps")
}

// BenchmarkFig9bCacheSize: switch throughput vs cache size (snake test).
// Paper: flat 2.24 BQPS up to 64K items.
func BenchmarkFig9bCacheSize(b *testing.B) {
	tb := runFigure(b, "fig9b", true)
	b.ReportMetric(tb.Col("modeled_BQPS")[0], "modeled_BQPS_min")
	b.ReportMetric(lastOf(tb.Col("modeled_BQPS")), "modeled_BQPS_max")
}

// BenchmarkFig10aThroughput: saturated throughput vs skew.
// Paper: NetCache beats NoCache 3.6x / 6.5x / 10x at Zipf 0.9 / 0.95 / 0.99.
func BenchmarkFig10aThroughput(b *testing.B) {
	tb := runFigure(b, "fig10a", false)
	sp := tb.Col("speedup")
	b.ReportMetric(sp[1], "speedup_z090")
	b.ReportMetric(sp[2], "speedup_z095")
	b.ReportMetric(sp[3], "speedup_z099")
	b.ReportMetric(tb.Col("netcache")[3], "netcache_z099_BQPS")
}

// BenchmarkFig10bBalance: per-server load at saturation.
// Paper: skewed without the cache, near-uniform with it.
func BenchmarkFig10bBalance(b *testing.B) {
	tb := runFigure(b, "fig10b", false)
	noc := tb.Col("noc_z099")
	nc := tb.Col("netcache_z099")
	b.ReportMetric(lastOf(noc)/noc[0], "nocache_max_over_min")
	b.ReportMetric(lastOf(nc)/nc[0], "netcache_max_over_min")
}

// BenchmarkFig10cLatency: average latency vs offered throughput.
// Paper: NoCache 15us saturating at 0.2 BQPS; NetCache 11-12us to 2 BQPS.
func BenchmarkFig10cLatency(b *testing.B) {
	tb := runFigure(b, "fig10c", false)
	nc := tb.Col("netcache_us")
	b.ReportMetric(nc[0], "netcache_us_low_load")
	b.ReportMetric(nc[len(nc)-2], "netcache_us_at_2BQPS")
}

// BenchmarkFig10dWriteRatio: throughput vs write ratio.
// Paper: skewed writes erase the benefit near ratio 0.2.
func BenchmarkFig10dWriteRatio(b *testing.B) {
	tb := runFigure(b, "fig10d", false)
	ratios := tb.Col("write_ratio")
	ncSkew := tb.Col("nc_skewedW")
	nocSkew := tb.Col("noc_skewedW")
	cross := 1.0
	for i := range ratios {
		if ncSkew[i] <= nocSkew[i]*1.05 {
			cross = ratios[i]
			break
		}
	}
	b.ReportMetric(cross, "skewed_crossover_ratio")
	b.ReportMetric(tb.Col("nc_uniformW")[0], "nc_read_only_BQPS")
}

// BenchmarkFig10eCacheSize: throughput vs cache size.
// Paper: ~1000 items balance 128 nodes; diminishing returns.
func BenchmarkFig10eCacheSize(b *testing.B) {
	tb := runFigure(b, "fig10e", false)
	b.ReportMetric(tb.Col("z099_servers")[4]/1.28, "balance_at_1000_items")
	b.ReportMetric(lastOf(tb.Col("z099_total")), "z099_total_max_BQPS")
}

// BenchmarkFig10fScalability: multi-rack scale-out.
// Paper: NoCache flat; Leaf limited; Leaf-Spine linear in servers.
func BenchmarkFig10fScalability(b *testing.B) {
	tb := runFigure(b, "fig10f", false)
	noc := tb.Col("nocache")
	leaf := tb.Col("leaf_cache")
	spine := tb.Col("leaf_spine_cache")
	b.ReportMetric(lastOf(noc)/noc[0], "nocache_gain_32racks")
	b.ReportMetric(lastOf(leaf)/leaf[0], "leaf_gain_32racks")
	b.ReportMetric(lastOf(spine)/spine[0], "leafspine_gain_32racks")
}

// dynamicHeadlines reports the dip/recovery profile of a Fig. 11 run.
func dynamicHeadlines(b *testing.B, id string) {
	tb := runFigure(b, id, true)
	served := tb.Col("served")
	loss := tb.Col("loss_pct")
	worstLoss, mean := 0.0, 0.0
	for i := range served {
		mean += served[i]
		if loss[i] > worstLoss {
			worstLoss = loss[i]
		}
	}
	mean /= float64(len(served))
	b.ReportMetric(mean, "mean_served_per_tick")
	b.ReportMetric(worstLoss, "worst_loss_pct")
}

// BenchmarkFig11aHotIn: radical churn; per-second throughput dips then
// recovers within a tick.
func BenchmarkFig11aHotIn(b *testing.B) { dynamicHeadlines(b, "fig11a") }

// BenchmarkFig11bRandom: moderate churn; shallow dips.
func BenchmarkFig11bRandom(b *testing.B) { dynamicHeadlines(b, "fig11b") }

// BenchmarkFig11cHotOut: mild churn; steady throughput.
func BenchmarkFig11cHotOut(b *testing.B) { dynamicHeadlines(b, "fig11c") }

// BenchmarkResources: compiles the paper-scale program and reports on-chip
// memory use. Paper (§6): less than 50% of the Tofino's on-chip memory.
func BenchmarkResources(b *testing.B) {
	tb := runFigure(b, "resources", false)
	b.ReportMetric(tb.Col("sram_pct_of_pipe")[0], "sram_pct")
}

// BenchmarkEndToEndCachedGet measures this substrate's full query path for a
// switch-served read: client -> switch pipeline (hit) -> client.
func BenchmarkEndToEndCachedGet(b *testing.B) {
	r, err := New(Config{Servers: 4, Clients: 1, CacheCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(128, 128)
	if err := r.PrePopulateTopK(16); err != nil {
		b.Fatal(err)
	}
	cli := r.Client(0)
	key := KeyName(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndServerGet measures the miss path: client -> switch ->
// storage server -> switch -> client.
func BenchmarkEndToEndServerGet(b *testing.B) {
	r, err := New(Config{Servers: 4, Clients: 1, CacheCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(128, 128)
	cli := r.Client(0)
	key := KeyName(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndPutCached measures a coherent write to a cached key:
// invalidation, store update, data-plane refresh, ack.
func BenchmarkEndToEndPutCached(b *testing.B) {
	r, err := New(Config{Servers: 4, Clients: 1, CacheCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(128, 128)
	if err := r.PrePopulateTopK(16); err != nil {
		b.Fatal(err)
	}
	cli := r.Client(0)
	key := KeyName(3)
	val := workload.ValueFor(3, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

// pipelineBenchRig builds a rack and a ready-to-inject cache-hit GET frame
// for raw pipeline benchmarks (no client/simnet overhead — just Process).
func pipelineBenchRig(b *testing.B) (r *rack.Rack, frame []byte, inPort int) {
	b.Helper()
	r, err := rack.New(rack.Config{Servers: 4, Clients: 2, CacheCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(128, 128)
	key := workload.KeyName(3)
	if err := r.PrePopulate([]netproto.Key{key}); err != nil {
		b.Fatal(err)
	}
	pkt := netproto.Packet{Op: netproto.OpGet, Seq: 1, Key: key}
	payload, err := pkt.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	frame = netproto.MarshalFrame(r.Partition(key), rack.ClientAddr(0), payload)
	return r, frame, 4 // first client-facing port (after the 4 servers)
}

// BenchmarkPipelineSequential is the single-goroutine baseline for the raw
// cache-hit GET path through the switch pipeline. It uses the steady-state
// calling convention of simnet and the UDP daemon: an emission buffer reused
// across packets and pooled reply frames released after use, so the loop's
// allocs/op is the pipeline's intrinsic garbage, not the harness's.
func BenchmarkPipelineSequential(b *testing.B) {
	r, frame, inPort := pipelineBenchRig(b)
	out := make([]dataplane.Emitted, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = r.Switch.ProcessAppend(frame, inPort, out[:0])
		if err != nil || len(out) != 1 {
			b.Fatalf("ProcessAppend = %v, %v", out, err)
		}
		dataplane.ReleaseFrame(out[0])
	}
}

// BenchmarkPipelineParallel drives the same cache-hit GET path from many
// goroutines at once (use -cpu to set the count, e.g. -cpu 8). With the
// per-stage serialization of this refactor, throughput should scale with
// cores instead of collapsing onto one pipeline-wide lock.
func BenchmarkPipelineParallel(b *testing.B) {
	r, frame, inPort := pipelineBenchRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		out := make([]dataplane.Emitted, 0, 4)
		for pb.Next() {
			var err error
			out, err = r.Switch.ProcessAppend(frame, inPort, out[:0])
			if err != nil || len(out) != 1 {
				b.Errorf("ProcessAppend = %v, %v", out, err)
				return
			}
			dataplane.ReleaseFrame(out[0])
		}
	})
}

// BenchmarkRackParallelGet is the end-to-end fan-out: concurrent clients
// issuing cache-hit reads through the full client/simnet/switch path.
func BenchmarkRackParallelGet(b *testing.B) {
	const nClients = 8
	r, err := rack.New(rack.Config{Servers: 4, Clients: nClients, CacheCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(128, 128)
	key := workload.KeyName(3)
	if err := r.PrePopulate([]netproto.Key{key}); err != nil {
		b.Fatal(err)
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cli := r.Client(int(next.Add(1)-1) % nClients)
		for pb.Next() {
			if _, err := cli.Get(key); err != nil {
				b.Errorf("get: %v", err)
				return
			}
		}
	})
}

// BenchmarkRackPipelinedGet is the batched counterpart of RackParallelGet:
// one client keeps a window of cache-hit reads outstanding via GetBatch, so
// each burst enters the fabric as one InjectBatch (one actor wakeup for the
// whole window) instead of a goroutine per query. ns/op is per Get.
func BenchmarkRackPipelinedGet(b *testing.B) {
	const window = 32
	r, err := rack.New(rack.Config{
		Servers: 4, Clients: 1, CacheCapacity: 64, ClientWindow: window,
	})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(128, 128)
	key := workload.KeyName(3)
	if err := r.PrePopulate([]netproto.Key{key}); err != nil {
		b.Fatal(err)
	}
	cli := r.Client(0)
	keys := make([]netproto.Key, window)
	for i := range keys {
		keys[i] = key
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += window {
		n := window
		if rest := b.N - done; rest < n {
			n = rest
		}
		_, errs := cli.GetBatch(keys[:n])
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// multiRackBenchRig assembles a 2-rack leaf-spine fabric with one key cached
// at the spine, one cached only at a ToR, and the rest server-only.
func multiRackBenchRig(b *testing.B, window int) (f *leafspine.Fabric, spineKey, torKey netproto.Key) {
	b.Helper()
	f, err := leafspine.New(leafspine.Config{
		Racks: 2, ServersPerRack: 2, Clients: 1,
		SpineCache: 8, TorCache: 8, ClientWindow: window,
	})
	if err != nil {
		b.Fatal(err)
	}
	f.LoadDataset(128, 128)
	spineKey, torKey = workload.KeyName(3), workload.KeyName(4)
	_, spineCtl := f.Spine()
	if err := spineCtl.InsertKey(spineKey); err != nil {
		b.Fatal(err)
	}
	_, torCtl := f.Tor(f.RackOf(torKey))
	if err := torCtl.InsertKey(torKey); err != nil {
		b.Fatal(err)
	}
	return f, spineKey, torKey
}

// BenchmarkMultiRackSpineCachedGet: the multi-rack fast path — a read served
// by the spine switch without ever crossing a trunk.
func BenchmarkMultiRackSpineCachedGet(b *testing.B) {
	f, key, _ := multiRackBenchRig(b, 0)
	cli := f.Client(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiRackTorCachedGet: a spine miss served by the owning ToR's
// cache — the query and reply each cross one inter-switch trunk.
func BenchmarkMultiRackTorCachedGet(b *testing.B) {
	f, _, key := multiRackBenchRig(b, 0)
	cli := f.Client(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiRackServerGet: the full miss path — spine, trunk, ToR,
// storage server and back.
func BenchmarkMultiRackServerGet(b *testing.B) {
	f, _, _ := multiRackBenchRig(b, 0)
	cli := f.Client(0)
	key := workload.KeyName(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiRackPipelinedGet: one client keeps a window of reads
// outstanding across both racks via GetBatch (ns/op is per Get) — the
// batched injection path riding the trunks.
func BenchmarkMultiRackPipelinedGet(b *testing.B) {
	const window = 32
	f, _, _ := multiRackBenchRig(b, window)
	cli := f.Client(0)
	keys := make([]netproto.Key, window)
	for i := range keys {
		keys[i] = workload.KeyName(100 + i%8) // server-only keys across both racks
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += window {
		n := window
		if rest := b.N - done; rest < n {
			n = rest
		}
		_, errs := cli.GetBatch(keys[:n])
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkControllerCycle measures one statistics-drain + cache-update +
// reset cycle on a warm switch.
func BenchmarkControllerCycle(b *testing.B) {
	r, err := New(Config{Servers: 4, Clients: 1, CacheCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(256, 64)
	cli := r.Client(0)
	for i := 0; i < 200; i++ {
		cli.Get(KeyName(i % 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Tick()
	}
}

// BenchmarkFailover: the replicated tier's detection-to-recovery profile.
// Each iteration runs the three seeded failover chaos scenarios (crash the
// primary permanently, fail over, rejoin + resync, crash the promoted node,
// fail back) and reports the worst detection window and recovery latencies.
func BenchmarkFailover(b *testing.B) {
	tb := runFigure(b, "failover", true)
	b.ReportMetric(maxOf(tb.Col("detect_ticks")), "detect_ticks_max")
	b.ReportMetric(maxOf(tb.Col("failover_us")), "failover_us_max")
	b.ReportMetric(maxOf(tb.Col("failback_us")), "failback_us_max")
	b.ReportMetric(sumOf(tb.Col("hot_reads")), "hot_reads")
	b.ReportMetric(sumOf(tb.Col("post_failover_timeouts")), "post_failover_timeouts")
	b.ReportMetric(sumOf(tb.Col("violations")), "violations")
}

func maxOf(v []float64) float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func sumOf(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

var _ = harness.Experiments // keep the harness import explicit
