module netcache

go 1.22
