package netcache

import (
	"bytes"
	"testing"
	"time"
)

func newRack(t *testing.T) *Rack {
	t.Helper()
	r, err := New(Config{Servers: 4, Clients: 1, CacheCapacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFacadeCRUD(t *testing.T) {
	r := newRack(t)
	cli := r.Client(0)
	key := KeyFromString("user:1")
	if _, err := cli.Get(key); err != ErrNotFound {
		t.Fatalf("Get absent: %v", err)
	}
	if err := cli.Put(key, []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, err := cli.Get(key)
	if err != nil || string(v) != "alice" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := cli.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get(key); err != ErrNotFound {
		t.Fatalf("Get after delete: %v", err)
	}
}

func TestFacadeHotKeyCaching(t *testing.T) {
	r := newRack(t)
	r.LoadDataset(100, 64)
	cli := r.Client(0)
	hot := KeyName(3)
	for i := 0; i < 20; i++ {
		if _, err := cli.Get(hot); err != nil {
			t.Fatal(err)
		}
	}
	r.Tick()
	if !r.Cached(hot) {
		t.Fatal("hot key not cached")
	}
	st := r.Stats()
	if st.CachedItems != 1 || st.CacheInserts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.SwitchRx == 0 || st.ServerGets == 0 {
		t.Errorf("counters empty: %+v", st)
	}
}

func TestFacadeStartController(t *testing.T) {
	r := newRack(t)
	r.LoadDataset(50, 32)
	stop := r.StartController(2 * time.Millisecond)
	defer stop()
	cli := r.Client(0)
	hot := KeyName(7)
	deadline := time.Now().Add(2 * time.Second)
	for !r.Cached(hot) {
		if time.Now().After(deadline) {
			t.Fatal("controller goroutine never cached the hot key")
		}
		if _, err := cli.Get(hot); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadePrePopulate(t *testing.T) {
	r := newRack(t)
	r.LoadDataset(50, 32)
	if err := r.PrePopulateTopK(10); err != nil {
		t.Fatal(err)
	}
	if r.CacheLen() != 10 {
		t.Errorf("CacheLen = %d", r.CacheLen())
	}
	v, err := r.Client(0).Get(KeyName(0))
	if err != nil || len(v) != 32 {
		t.Fatalf("cached read: %d bytes, %v", len(v), err)
	}
}

func TestFacadeKeys(t *testing.T) {
	if KeyID(KeyName(12345)) != 12345 {
		t.Error("KeyName/KeyID round trip broken")
	}
	if HashKey([]byte("abc")) == HashKey([]byte("abd")) {
		t.Error("HashKey collision on near keys")
	}
	k := KeyFromString("xy")
	if !bytes.HasPrefix(k[:], []byte("xy")) {
		t.Error("KeyFromString prefix")
	}
}

func TestFacadeNumServers(t *testing.T) {
	if got := newRack(t).NumServers(); got != 4 {
		t.Errorf("NumServers = %d", got)
	}
}

func TestFacadeResourceReport(t *testing.T) {
	if s := newRack(t).ResourceReport(); s == "" {
		t.Error("empty resource report")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 18 {
		t.Errorf("registry size = %d", len(Experiments()))
	}
	tb, err := RunExperiment("fig10a", true)
	if err != nil || len(tb.Rows) == 0 {
		t.Fatalf("fig10a: %v", err)
	}
	if _, err := RunExperiment("nope", true); err == nil {
		t.Error("unknown experiment should error")
	}
	// fig10f requires the topo model registration via the blank import.
	if _, err := RunExperiment("fig10f", true); err != nil {
		t.Errorf("fig10f model not registered: %v", err)
	}
}

func TestFacadeDynamic(t *testing.T) {
	cfg := DefaultDynamicConfig(ChurnHotOut)
	cfg.Ticks = 5
	cfg.InitialRate = 4000
	cfg.PartitionCapacity = 200
	res, err := RunDynamic(cfg)
	if err != nil || len(res.Ticks) != 5 {
		t.Fatalf("dynamic: %d ticks, %v", len(res.Ticks), err)
	}
}

func TestPaperSwitchConfigCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale switch in -short mode")
	}
	r, err := New(Config{Servers: 2, Clients: 1, Switch: PaperSwitchConfig()})
	if err != nil {
		t.Fatal(err)
	}
	cli := r.Client(0)
	key := KeyFromString("k")
	if err := cli.Put(key, bytes.Repeat([]byte("v"), 128)); err != nil {
		t.Fatal(err)
	}
	if v, err := cli.Get(key); err != nil || len(v) != 128 {
		t.Fatalf("full-scale rack Get: %d bytes, %v", len(v), err)
	}
}

func TestFacadeLeafSpine(t *testing.T) {
	fb, err := NewLeafSpine(LeafSpineConfig{
		Racks: 2, ServersPerRack: 3, Clients: 1, SpineCache: 8, TorCache: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	fb.LoadDataset(60, 32)
	cli := fb.Client(0)
	hot := KeyName(4)
	for i := 0; i < 20; i++ {
		if _, err := cli.Get(hot); err != nil {
			t.Fatal(err)
		}
	}
	fb.Tick()
	if fb.TorCacheLen(fb.RackOf(hot)) == 0 {
		t.Error("owning rack's ToR should have cached the hot key")
	}
	if err := cli.Put(hot, []byte("coherent")); err != nil {
		t.Fatal(err)
	}
	v, err := cli.Get(hot)
	if err != nil || string(v) != "coherent" {
		t.Fatalf("fabric write: %q %v", v, err)
	}
	if fb.SpineCacheLen() != 0 {
		// Not an error — just exercise the accessor.
		t.Logf("spine cached %d items", fb.SpineCacheLen())
	}
}
