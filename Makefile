# Convenience targets for the netcache-go repository. Stdlib-only; any
# recent Go toolchain (>= 1.22) works.

GO ?= go

.PHONY: all test race bench bench-json bench-compare chaos failover experiments examples fuzz profile vet lint clean

all: test

# The default test target vets and lints first, then includes the race
# detector: the data plane is concurrent end to end, so a non-race run alone
# proves little. Performance claims are guarded separately: run
# `make bench-compare` before committing changes on the packet path — it
# reruns the pipeline benchmark suite and fails on a >10% geomean
# regression against the committed BENCH_pipeline.json baseline.
test: vet lint race
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The invariant-checked chaos suite (internal/chaos) under the race
# detector. Rerun a failing seed with:
#   go test -race ./internal/chaos -run TestChaos -chaos.seed=<seed>
chaos:
	$(GO) test -race -v -timeout 10m -run 'TestChaos' ./internal/chaos

# Just the replicated-tier failover scenarios: permanent primary crash,
# controller-driven failover, rejoin + anti-entropy resync, failback.
failover:
	$(GO) test -race -v -timeout 10m -run 'TestChaosFailover' ./internal/chaos

bench:
	$(GO) test -bench=. -benchmem ./...

# The packet-path benchmark suite as machine-readable JSON (ns/op, B/op,
# allocs/op, derived kops/s per benchmark) — the regression record behind
# EXPERIMENTS.md's "Zero-allocation batched packet path" section. The
# per-package runs below keep the set free of name collisions (several
# packages define same-named end-to-end benches).
PIPELINE_BENCH = BenchmarkPipelineSequential|BenchmarkPipelineParallel|BenchmarkEndToEndCachedGet|BenchmarkEndToEndServerGet|BenchmarkRackParallelGet|BenchmarkRackPipelinedGet

# The observability suite: snapshot/scrape cost, the rate engine's
# per-window cost, trace-on/off and telemetry-on/off pipeline pairs (the
# telemetry-on budget is <5% over off; see DESIGN.md #13).
OBS_BENCH = BenchmarkObs|BenchmarkMonitorWindow|BenchmarkTelemetry

define run_pipeline_benches
	{ $(GO) test -run xxx -benchmem -bench '$(PIPELINE_BENCH)' . && \
	  $(GO) test -run xxx -benchmem -bench 'BenchmarkFastPathCachedGet' ./internal/switchcore && \
	  $(GO) test -run xxx -benchmem -bench 'BenchmarkSeqlockGetParallel' ./internal/kvstore; }
endef

bench-json:
	$(call run_pipeline_benches) | $(GO) run ./cmd/benchjson > BENCH_pipeline.json
	@cat BENCH_pipeline.json
	$(GO) test -run xxx -benchmem \
		-bench 'BenchmarkMultiRack' \
		. | $(GO) run ./cmd/benchjson > BENCH_multirack.json
	@cat BENCH_multirack.json
	$(GO) test -run xxx -benchmem \
		-bench 'BenchmarkFailover' \
		. | $(GO) run ./cmd/benchjson > BENCH_failover.json
	@cat BENCH_failover.json
	$(GO) test -run xxx -benchmem \
		-bench '$(OBS_BENCH)' \
		. | $(GO) run ./cmd/benchjson > BENCH_obs.json
	@cat BENCH_obs.json

# Rerun the pipeline benchmark suite and compare against the committed
# BENCH_pipeline.json baseline: per-benchmark deltas, then a geometric-mean
# verdict. Exits non-zero when the geomean ns/op regression exceeds 10%
# (tune with `-tolerance`). Stdlib only — benchstat is deliberately not
# required.
bench-compare:
	$(call run_pipeline_benches) | $(GO) run ./cmd/benchcompare -baseline BENCH_pipeline.json
	$(GO) test -run xxx -benchmem -bench '$(OBS_BENCH)' . \
		| $(GO) run ./cmd/benchcompare -baseline BENCH_obs.json

# Regenerate every table/figure of the paper's evaluation (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/netcache-bench

# Profile the packet-level rack under chaosbench load (see EXPERIMENTS.md,
# "Profiling the packet path", for reading the result).
profile:
	$(GO) run ./cmd/netcache-bench -exp chaosbench -quick \
		-cpuprofile cpu.pprof -memprofile mem.pprof -mutexprofile mutex.pprof
	@echo "wrote cpu.pprof mem.pprof mutex.pprof — inspect with: go tool pprof -top cpu.pprof"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/skewbalance
	$(GO) run ./examples/dynamic
	$(GO) run ./examples/multirack
	$(GO) run ./examples/webcache

fuzz:
	$(GO) test -fuzz FuzzDecode$$ -fuzztime 30s ./internal/netproto

vet:
	gofmt -l . && $(GO) vet ./...

# Static analysis beyond go vet. The repo is stdlib-only, so the linters are
# optional tooling: staticcheck when installed, else golangci-lint (config in
# .golangci.yml), else a no-op with a note — go vet already ran via `vet`.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "lint: staticcheck/golangci-lint not installed; go vet only"; \
	fi

clean:
	$(GO) clean -testcache
