# Convenience targets for the netcache-go repository. Stdlib-only; any
# recent Go toolchain (>= 1.22) works.

GO ?= go

.PHONY: all test race bench experiments examples fuzz vet clean

all: vet test

# The default test target includes the race detector: the data plane is
# concurrent end to end, so a non-race run alone proves little.
test: race
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure of the paper's evaluation (EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/netcache-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/skewbalance
	$(GO) run ./examples/dynamic
	$(GO) run ./examples/multirack
	$(GO) run ./examples/webcache

fuzz:
	$(GO) test -fuzz FuzzDecode$$ -fuzztime 30s ./internal/netproto

vet:
	gofmt -l . && $(GO) vet ./...

clean:
	$(GO) clean -testcache
