// Package netcache is a Go implementation of NetCache (Jin et al., SOSP
// 2017): a rack-scale key-value store architecture in which the top-of-rack
// programmable switch serves the hottest items directly from its data plane,
// balancing the load across the storage servers under arbitrarily skewed and
// rapidly-changing workloads.
//
// The package assembles the full system described in the paper:
//
//   - a programmable switch ASIC model (pipes, stages, match-action tables,
//     register arrays) on which the NetCache P4 program is compiled and run
//     packet by packet;
//   - the variable-length on-chip key-value store with bitmap+index slot
//     addressing and First-Fit memory management;
//   - the query-statistics engine: sampled per-key counters, a Count-Min
//     sketch heavy-hitter detector, and a Bloom filter report deduplicator;
//   - the controller that inserts and evicts cached items;
//   - storage-server agents with write-through cache coherence; and
//   - a client library with the familiar Get/Put/Delete interface.
//
// # Quick start
//
//	r, err := netcache.New(netcache.Config{Servers: 8, Clients: 1})
//	if err != nil { ... }
//	cli := r.Client(0)
//	cli.Put(netcache.KeyFromString("user:42"), []byte("alice"))
//	v, err := cli.Get(netcache.KeyFromString("user:42"))
//
// Hot keys are detected and cached automatically once the controller runs
// (Rack.Tick or Rack.StartController); reads of cached keys never touch a
// storage server.
//
// The evaluation of the paper — every figure — can be regenerated through
// Experiments / RunExperiment or the netcache-bench command.
package netcache

import (
	"fmt"
	"time"

	"netcache/internal/client"
	"netcache/internal/controller"
	"netcache/internal/harness"
	"netcache/internal/netproto"
	"netcache/internal/qtrace"
	_ "netcache/internal/queuesim" // registers the fig10c-sim latency experiment
	"netcache/internal/rack"
	"netcache/internal/stats"
	"netcache/internal/switchcore"
	_ "netcache/internal/topo" // registers the fig10f scalability model
	"netcache/internal/workload"
)

// Key is the fixed 16-byte NetCache key (§5 of the paper: variable-length
// keys are hashed onto this type with HashKey).
type Key = netproto.Key

// Aliases exposing the workload and experiment toolkits through the public
// API. The aliased packages are internal; these names are the supported
// surface.
type (
	// Churn selects a dynamic-workload pattern for DynamicConfig.
	Churn = workload.Churn
	// Experiment regenerates one figure of the paper's evaluation.
	Experiment = harness.Experiment
	// Table is an experiment's numeric result grid.
	Table = harness.Table
	// DynamicConfig parameterizes a Fig. 11-style dynamic emulation.
	DynamicConfig = harness.DynamicConfig
	// DynamicResult holds its per-tick measurements.
	DynamicResult = harness.DynamicResult
	// SwitchConfig sizes the switch data-plane program.
	SwitchConfig = switchcore.Config
	// WritePolicy configures adaptive cache disabling under
	// write-dominated load (§7.3).
	WritePolicy = controller.WritePolicy
	// Zipf samples popularity ranks with the bounded Zipf law the
	// paper's workloads use (rank 0 hottest).
	Zipf = workload.Zipf
	// Popularity maps popularity ranks to key IDs and supports the
	// hot-in/random/hot-out churn mutations.
	Popularity = workload.Popularity
	// Snapshot is one observability snapshot: every component counter and
	// latency-histogram summary under flat dotted names, JSON-serializable.
	Snapshot = stats.Snapshot
	// HistStat is a histogram's summary inside a Snapshot
	// (count/mean/p50/p99/max, nanoseconds for latency histograms).
	HistStat = stats.HistStat
	// TraceRing is the bounded query-trace buffer returned by EnableTrace.
	TraceRing = qtrace.Ring
	// TraceRecord is one per-query hop observation in a TraceRing.
	TraceRecord = qtrace.Record
)

// NewZipf returns a Zipf sampler over [0, n) with skew theta in [0, 1) —
// the paper evaluates 0.9, 0.95 and 0.99.
func NewZipf(n int, theta float64) (*Zipf, error) { return workload.NewZipf(n, theta) }

// NewPopularity returns the identity rank→key mapping over n keys.
func NewPopularity(n int) *Popularity { return workload.NewPopularity(n) }

// Dynamic-workload patterns (§7.1).
const (
	ChurnNone   = workload.ChurnNone
	ChurnHotIn  = workload.ChurnHotIn
	ChurnRandom = workload.ChurnRandom
	ChurnHotOut = workload.ChurnHotOut
)

// Client errors.
var (
	// ErrNotFound reports a Get of an absent key.
	ErrNotFound = client.ErrNotFound
	// ErrTimeout reports an unanswered query after all retransmissions.
	ErrTimeout = client.ErrTimeout
)

// KeyFromString builds a Key from a short string (zero-padded/truncated).
func KeyFromString(s string) Key { return netproto.KeyFromString(s) }

// HashKey maps an arbitrary-length key onto the fixed Key type; keep the
// original around to verify against hash collisions (§5).
func HashKey(raw []byte) Key { return netproto.HashKey(raw) }

// KeyName converts a dense integer ID to a Key; KeyID inverts it. The
// workload generators and dataset loaders speak IDs.
func KeyName(id int) Key { return workload.KeyName(id) }

// KeyID recovers the integer ID from a KeyName key.
func KeyID(k Key) int { return workload.KeyID(k) }

// Config sizes an in-process NetCache rack.
type Config struct {
	// Servers is the number of storage servers (≥1).
	Servers int
	// Clients is the number of client handles to provision (≥1).
	Clients int
	// CacheCapacity caps the number of cached items; zero uses the
	// switch program's limit.
	CacheCapacity int
	// Switch optionally overrides the switch program configuration;
	// the zero value selects a small fast-compiling program. Use
	// PaperSwitchConfig for the prototype's full 64K×128 B dimensions.
	Switch SwitchConfig
	// ServerShards is each server's per-core sharding factor (default 4).
	ServerShards int
	// WritePolicy optionally enables the §7.3 adaptive policy: flush and
	// pause caching while write-triggered invalidations dominate hits.
	WritePolicy WritePolicy
	// StorageEngine selects the servers' storage engine: "chained"
	// (default) or "cuckoo".
	StorageEngine string
	// Window is the clients' closed-loop pipelining depth for
	// GetBatch/GetMulti (outstanding requests per batch); zero uses the
	// client default of 32.
	Window int
	// Replicate enables the replicated storage tier: every key partition
	// gets a backup server (ring pairing), writes replicate before they
	// are acked, and the controller's failure detector fails a dead
	// primary's partition over to its backup. Requires Servers ≥ 2.
	Replicate bool
	// HeartbeatMisses is the failure detector's death threshold in
	// controller Ticks (zero means 3). Only meaningful with Replicate.
	HeartbeatMisses int
}

// PaperSwitchConfig returns the prototype's switch program dimensions (§6):
// 64K-entry lookup table, 8 value stages of 64K 16-byte slots (8 MB), 4×64K
// Count-Min sketch, 3×256K-bit Bloom filter.
func PaperSwitchConfig() SwitchConfig { return switchcore.PaperConfig() }

// Rack is an assembled in-process NetCache storage rack: one switch, the
// storage servers, the controller, and client handles.
type Rack struct {
	r *rack.Rack
}

// New builds a rack.
func New(cfg Config) (*Rack, error) {
	r, err := rack.New(rack.Config{
		Switch:          cfg.Switch,
		Servers:         cfg.Servers,
		Clients:         cfg.Clients,
		CacheCapacity:   cfg.CacheCapacity,
		ServerShards:    cfg.ServerShards,
		WritePolicy:     cfg.WritePolicy,
		StorageEngine:   cfg.StorageEngine,
		ClientWindow:    cfg.Window,
		Replicate:       cfg.Replicate,
		HeartbeatMisses: cfg.HeartbeatMisses,
	})
	if err != nil {
		return nil, err
	}
	return &Rack{r: r}, nil
}

// Client returns client handle i.
func (r *Rack) Client(i int) *Client {
	return &Client{c: r.r.Client(i)}
}

// NumServers returns the number of storage servers.
func (r *Rack) NumServers() int { return len(r.r.Servers) }

// ServerGets returns how many read queries storage server i has served —
// the per-server load signal behind the paper's Fig. 10b breakdown.
func (r *Rack) ServerGets(i int) uint64 { return r.r.Servers[i].Metrics.Gets.Value() }

// ServerItems returns how many items storage server i currently stores.
func (r *Rack) ServerItems(i int) int { return r.r.Servers[i].Store().Len() }

// Tick runs one controller cycle: process heavy-hitter reports, update the
// cached set, reset the statistics window. The paper runs this once per
// second.
func (r *Rack) Tick() { r.r.Tick() }

// StartController runs Tick on the given interval until the returned stop
// function is called.
func (r *Rack) StartController(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.r.Tick()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// CacheLen returns the number of items currently cached in the switch.
func (r *Rack) CacheLen() int { return r.r.Controller.Len() }

// CachingDisabled reports whether the adaptive write policy has currently
// turned the cache off.
func (r *Rack) CachingDisabled() bool { return r.r.Controller.CachingDisabled() }

// Cached reports whether key currently lives in the switch cache.
func (r *Rack) Cached(key Key) bool { return r.r.Controller.Cached(key) }

// LoadDataset installs n items — KeyName(0..n-1) with deterministic values
// of valueSize bytes — directly into the servers' stores.
func (r *Rack) LoadDataset(n, valueSize int) { r.r.LoadDataset(n, valueSize) }

// PrePopulateTopK force-caches keys KeyName(0..k-1), the warm start the
// paper's dynamic experiments use.
func (r *Rack) PrePopulateTopK(k int) error {
	keys := make([]Key, k)
	for i := range keys {
		keys[i] = KeyName(i)
	}
	return r.r.PrePopulate(keys)
}

// Stats summarizes the rack's activity.
type Stats struct {
	// CachedItems is the current switch-cache population.
	CachedItems int
	// SwitchRx/SwitchTx count frames through the switch data plane.
	SwitchRx, SwitchTx uint64
	// ServerGets/ServerPuts count queries that reached storage servers.
	ServerGets, ServerPuts uint64
	// CacheInserts/CacheEvictions count controller actions.
	CacheInserts, CacheEvictions uint64
}

// Stats returns a snapshot.
func (r *Rack) Stats() Stats {
	st := Stats{
		CachedItems:    r.r.Controller.Len(),
		CacheInserts:   r.r.Controller.Metrics.Inserts.Value(),
		CacheEvictions: r.r.Controller.Metrics.Evictions.Value(),
	}
	pc := r.r.Switch.Pipeline().Stats()
	st.SwitchRx, st.SwitchTx = pc.RxPackets, pc.TxPackets
	for _, s := range r.r.Servers {
		st.ServerGets += s.Metrics.Gets.Value()
		st.ServerPuts += s.Metrics.Puts.Value()
	}
	return st
}

// Snapshot collects every component counter — switch pipeline, simnet
// fabric, servers, controller, clients — plus the clients' per-op latency
// histograms (p50/p99/max) into one named, JSON-serializable view. Safe to
// call during traffic.
func (r *Rack) Snapshot() Snapshot { return r.r.Snapshot() }

// EnableTrace turns on query tracing into a bounded ring of per-query hop
// records (client send → switch hit/miss → server → reply, with
// retransmit/hedge flags). Tracing off — the default — costs one atomic
// load per packet. Pass the returned ring to inspect; call DisableTrace to
// turn it back off.
func (r *Rack) EnableTrace(capacity int) *TraceRing { return r.r.EnableTrace(capacity) }

// DisableTrace removes the query-trace taps installed by EnableTrace.
func (r *Rack) DisableTrace() { r.r.SetTraceRing(nil) }

// ResourceReport renders the switch program's on-chip resource usage (the
// artifact behind §6's "<50% of on-chip memory").
func (r *Rack) ResourceReport() string {
	return r.r.Switch.ResourceReport().String()
}

// Client is a handle for issuing queries against the rack. Safe for
// concurrent use.
type Client struct {
	c *client.Client
}

// Get fetches the value of key; ErrNotFound for absent keys. Whether the
// reply came from the switch cache or a storage server is transparent.
func (c *Client) Get(key Key) ([]byte, error) { return c.c.Get(key) }

// Put stores value (1..128 bytes) under key, write-through coherently.
func (c *Client) Put(key Key, value []byte) error { return c.c.Put(key, value) }

// Delete removes key; deleting an absent key is not an error.
func (c *Client) Delete(key Key) error { return c.c.Delete(key) }

// GetMulti fetches several keys concurrently; results and errors are
// positional. Hot keys in the batch are served by the switch.
func (c *Client) GetMulti(keys []Key) ([][]byte, []error) { return c.c.GetMulti(keys) }

// GetBatch fetches several keys with Config.Window requests outstanding at
// once, issuing each window as one batched burst into the fabric — the
// closed-loop depth the paper's throughput figures assume.
func (c *Client) GetBatch(keys []Key) ([][]byte, []error) { return c.c.GetBatch(keys) }

// Experiments returns the registry regenerating every table and figure of
// the paper's evaluation, in paper order.
func Experiments() []Experiment { return harness.Experiments() }

// RunExperiment runs one experiment by ID ("fig9a" … "fig11c",
// "resources"). quick trades precision for runtime.
func RunExperiment(id string, quick bool) (*Table, error) {
	exp, ok := harness.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("netcache: unknown experiment %q", id)
	}
	return exp.Run(quick)
}

// RunDynamic runs a Fig. 11-style dynamic-workload emulation with full
// control over the configuration.
func RunDynamic(cfg DynamicConfig) (DynamicResult, error) {
	return harness.RunDynamic(cfg)
}

// DefaultDynamicConfig returns the paper's Fig. 11 setup (scaled 1:10) for
// the given churn pattern.
func DefaultDynamicConfig(churn Churn) DynamicConfig {
	return harness.PaperDynamic(churn)
}
