package netcache

// Public surface of the multi-rack leaf-spine prototype (§5 future work,
// implemented packet-level in internal/leafspine).

import (
	"time"

	"netcache/internal/leafspine"
)

// LeafSpineConfig sizes a multi-rack fabric.
type LeafSpineConfig struct {
	// Racks is the number of storage racks (≥1), each behind its own
	// NetCache ToR switch.
	Racks int
	// ServersPerRack is each rack's width (≥1).
	ServersPerRack int
	// Clients attach to the spine switch (≥1).
	Clients int
	// SpineCache / TorCache cap each layer's cached items (0 = switch
	// limit).
	SpineCache, TorCache int
	// Switch optionally overrides the switch program used at both
	// layers.
	Switch SwitchConfig
	// Window is the clients' closed-loop pipelining depth for
	// GetBatch/GetMulti (outstanding requests per batch); zero uses the
	// client default of 32. Batches ride the vectorized injection path
	// across the inter-switch trunks.
	Window int
}

// Fabric is an assembled leaf-spine NetCache deployment: every switch runs
// the full NetCache pipeline; the spine caches the global head, each ToR
// its rack's head, with write-through coherence composing across the two
// layers.
type Fabric struct {
	f *leafspine.Fabric
}

// NewLeafSpine builds a fabric.
func NewLeafSpine(cfg LeafSpineConfig) (*Fabric, error) {
	f, err := leafspine.New(leafspine.Config{
		Racks:          cfg.Racks,
		ServersPerRack: cfg.ServersPerRack,
		Clients:        cfg.Clients,
		Switch:         cfg.Switch,
		SpineCache:     cfg.SpineCache,
		TorCache:       cfg.TorCache,
		ClientWindow:   cfg.Window,
	})
	if err != nil {
		return nil, err
	}
	return &Fabric{f: f}, nil
}

// Client returns client handle i (attached to the spine).
func (fb *Fabric) Client(i int) *Client { return &Client{c: fb.f.Client(i)} }

// LoadDataset installs the canonical dataset across all racks' servers.
func (fb *Fabric) LoadDataset(n, valueSize int) { fb.f.LoadDataset(n, valueSize) }

// Tick runs one controller cycle at every switch (ToRs first, then spine).
func (fb *Fabric) Tick() { fb.f.Tick() }

// StartControllers runs Tick on the given interval until stopped.
func (fb *Fabric) StartControllers(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fb.f.Tick()
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// SpineCacheLen returns the number of items cached at the spine layer.
func (fb *Fabric) SpineCacheLen() int {
	_, ctl := fb.f.Spine()
	return ctl.Len()
}

// TorCacheLen returns the number of items cached at rack r's ToR.
func (fb *Fabric) TorCacheLen(r int) int {
	_, ctl := fb.f.Tor(r)
	return ctl.Len()
}

// RackOf returns the rack index owning key.
func (fb *Fabric) RackOf(key Key) int { return fb.f.RackOf(key) }

// Snapshot collects every component counter across both tiers —
// "spine.*", "tor<r>.*" (switch, net, servers, controller each), and
// "client<i>.*" with per-op latency histograms — into one named,
// JSON-serializable view. Safe to call during traffic.
func (fb *Fabric) Snapshot() Snapshot { return fb.f.Snapshot() }

// SpineSnapshot returns just the spine tier's slice of the snapshot
// (prefixes stripped).
func (fb *Fabric) SpineSnapshot() Snapshot { return fb.f.SpineSnapshot() }

// TorSnapshot returns just rack r's ToR-tier slice of the snapshot.
func (fb *Fabric) TorSnapshot(r int) Snapshot { return fb.f.TorSnapshot(r) }

// EnableTrace turns on query tracing across both tiers into a bounded
// ring; DisableTrace turns it back off.
func (fb *Fabric) EnableTrace(capacity int) *TraceRing { return fb.f.EnableTrace(capacity) }

// DisableTrace removes the query-trace taps installed by EnableTrace.
func (fb *Fabric) DisableTrace() { fb.f.SetTraceRing(nil) }

// RebootSpine power-cycles the spine switch. Routes are re-provisioned
// immediately; until the spine controller's next Tick every query falls
// through to the ToR tier, which keeps serving its cached rack heads.
func (fb *Fabric) RebootSpine() error { return fb.f.RebootSpine() }

// RebootTor power-cycles rack r's ToR switch.
func (fb *Fabric) RebootTor(r int) error { return fb.f.RebootTor(r) }

// SetUplinkDown cuts (or restores) rack r's spine↔ToR trunk, as with an
// unplugged inter-switch cable: keys cached at the spine keep being served,
// everything else toward the rack times out until the link comes back.
func (fb *Fabric) SetUplinkDown(r int, down bool) { fb.f.SetUplinkDown(r, down) }
