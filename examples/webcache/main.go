// Web-object cache: the §5 extensions in one realistic scenario. Web pages
// have long URL keys (mapped onto the fixed 16-byte key with collision
// verification) and bodies larger than a single 128-byte item (split into
// chunks retrieved with multiple queries). Hot pages end up served entirely
// from the switch data plane — including all their chunks.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"netcache"
)

func main() {
	r, err := netcache.New(netcache.Config{Servers: 8, Clients: 1, CacheCapacity: 256})
	if err != nil {
		log.Fatal(err)
	}
	pages := r.ChunkedClient(0) // large bodies
	meta := r.VarClient(0)      // small metadata under long keys

	// Publish a few "pages".
	type page struct {
		url  string
		body string
	}
	site := []page{
		{"https://example.com/", strings.Repeat("<html>landing page</html>", 40)},
		{"https://example.com/blog/how-netcache-balances-key-value-stores", strings.Repeat("lorem ipsum ", 100)},
		{"https://example.com/assets/logo.svg", "<svg>tiny</svg>"},
	}
	for _, p := range site {
		if err := pages.Put([]byte(p.url), []byte(p.body)); err != nil {
			log.Fatalf("publish %s: %v", p.url, err)
		}
		etag := fmt.Sprintf("W/\"%x\"", len(p.body))
		if err := meta.Put([]byte("etag:"+p.url), []byte(etag)); err != nil {
			log.Fatalf("etag %s: %v", p.url, err)
		}
	}

	// Serve and verify.
	for _, p := range site {
		body, err := pages.Get([]byte(p.url))
		if err != nil || !bytes.Equal(body, []byte(p.body)) {
			log.Fatalf("get %s: %d bytes, %v", p.url, len(body), err)
		}
		etag, err := meta.Get([]byte("etag:" + p.url))
		if err != nil {
			log.Fatalf("etag %s: %v", p.url, err)
		}
		fmt.Printf("%-64s %6d bytes  etag %s\n", p.url, len(body), etag)
	}

	// The landing page goes viral: every chunk of it becomes hot and the
	// switch caches them all.
	viral := site[0]
	for i := 0; i < 40; i++ {
		if _, err := pages.Get([]byte(viral.url)); err != nil {
			log.Fatal(err)
		}
	}
	r.Tick()
	before := r.Stats().ServerGets
	for i := 0; i < 25; i++ {
		body, err := pages.Get([]byte(viral.url))
		if err != nil || len(body) != len(viral.body) {
			log.Fatalf("viral get: %d bytes, %v", len(body), err)
		}
	}
	after := r.Stats().ServerGets
	fmt.Printf("\nviral page cached: %d items (its chunks) now live in the switch\n", r.CacheLen())
	fmt.Printf("server-side reads for 25 full-page fetches after caching: %d\n", after-before)

	// Publishing a new revision stays coherent through the write path.
	fresh := strings.Repeat("<html>v2</html>", 30)
	if err := pages.Put([]byte(viral.url), []byte(fresh)); err != nil {
		log.Fatal(err)
	}
	body, err := pages.Get([]byte(viral.url))
	if err != nil || !bytes.Equal(body, []byte(fresh)) {
		log.Fatalf("revision: %d bytes, %v", len(body), err)
	}
	fmt.Println("new revision served coherently after the update")
}
