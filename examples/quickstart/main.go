// Quickstart: build an in-process NetCache rack, store and fetch items, and
// watch the switch start serving a hot key without the storage server ever
// seeing the reads.
package main

import (
	"fmt"
	"log"

	"netcache"
)

func main() {
	// A rack with 8 storage servers behind one NetCache ToR switch.
	r, err := netcache.New(netcache.Config{Servers: 8, Clients: 1, CacheCapacity: 128})
	if err != nil {
		log.Fatal(err)
	}
	cli := r.Client(0)

	// Plain key-value usage: the API mirrors Memcached/Redis.
	user := netcache.KeyFromString("user:42")
	if err := cli.Put(user, []byte("alice")); err != nil {
		log.Fatal(err)
	}
	v, err := cli.Get(user)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:42 = %s\n", v)

	// Hammer one key the way a trending item gets hammered.
	for i := 0; i < 50; i++ {
		if _, err := cli.Get(user); err != nil {
			log.Fatal(err)
		}
	}
	before := r.Stats()

	// One controller cycle: the in-switch heavy-hitter detector has
	// already reported the key; the controller caches it.
	r.Tick()
	if !r.Cached(user) {
		log.Fatal("expected user:42 to be cached after the controller cycle")
	}
	fmt.Println("user:42 is now cached in the switch data plane")

	// Subsequent reads are served at line rate by the switch: the
	// storage server's Get counter stops moving.
	for i := 0; i < 50; i++ {
		if _, err := cli.Get(user); err != nil {
			log.Fatal(err)
		}
	}
	after := r.Stats()
	fmt.Printf("server-side reads while hot: %d (before caching it had served %d)\n",
		after.ServerGets-before.ServerGets, before.ServerGets)

	// Writes stay coherent: the server applies them and refreshes the
	// switch copy in the data plane.
	if err := cli.Put(user, []byte("alice v2")); err != nil {
		log.Fatal(err)
	}
	v, _ = cli.Get(user)
	fmt.Printf("after write-through update: user:42 = %s\n", v)

	fmt.Printf("rack stats: %+v\n", r.Stats())
}
