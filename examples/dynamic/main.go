// Dynamic workloads: the paper's Fig. 11 live. Runs the three churn
// patterns — hot-in (radical), random (moderate), hot-out (mild) — through
// the real switch pipeline, heavy-hitter detector, and controller, and
// renders the per-second throughput as a sparkline so the dips and
// recoveries are visible in a terminal.
package main

import (
	"fmt"
	"log"

	"netcache"
)

func main() {
	for _, churn := range []netcache.Churn{
		netcache.ChurnHotIn, netcache.ChurnRandom, netcache.ChurnHotOut,
	} {
		cfg := netcache.DefaultDynamicConfig(churn)
		cfg.Ticks = 40
		fmt.Printf("== %s: %d keys, cache %d, churn %d keys every %d tick(s) ==\n",
			churn, cfg.Keys, cfg.CacheItems, cfg.ChurnN, cfg.ChurnEvery)

		res, err := netcache.RunDynamic(cfg)
		if err != nil {
			log.Fatal(err)
		}

		tput := res.Throughputs()
		max := 0.0
		for _, v := range tput {
			if v > max {
				max = v
			}
		}
		fmt.Print("served/tick: ")
		for _, v := range tput {
			fmt.Print(spark(v / max))
		}
		fmt.Println()

		worstLoss, worstTick := 0.0, -1
		for _, tk := range res.Ticks {
			if tk.LossRate > worstLoss {
				worstLoss, worstTick = tk.LossRate, tk.Tick
			}
		}
		if worstTick >= 0 && worstLoss > 0.01 {
			fmt.Printf("deepest dip: tick %d, %.1f%% loss — recovered by tick %d\n",
				worstTick, 100*worstLoss, worstTick+1)
		} else {
			fmt.Println("no significant dips: the cache absorbed the churn")
		}
		fmt.Println()
	}
}

// spark maps [0,1] onto a block-character sparkline.
func spark(f float64) string {
	blocks := []rune("▁▂▃▄▅▆▇█")
	i := int(f * float64(len(blocks)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(blocks) {
		i = len(blocks) - 1
	}
	return string(blocks[i])
}
