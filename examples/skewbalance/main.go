// Skew balancing: the paper's core claim (§1, Fig. 10a/10b) on a live rack.
//
// A Zipf-0.99 read workload concentrates on a few hot keys; without the
// cache those keys' servers carry far more than their fair share. This
// example drives the same workload twice — once with the controller
// disabled, once enabled — and prints the per-server load distribution and
// the imbalance factor for each run.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"netcache"
)

const (
	servers = 8
	keys    = 20_000
	queries = 30_000
	cache   = 64
)

func main() {
	fmt.Println("-- NoCache: controller disabled --")
	noCache := run(false)
	fmt.Println("-- NetCache: controller enabled --")
	withCache := run(true)

	fmt.Printf("\nimbalance (hottest server / mean): NoCache %.2fx, NetCache %.2fx\n",
		noCache, withCache)
	if withCache < noCache {
		fmt.Println("the in-network cache flattened the skew, as Fig. 10b shows")
	}
}

// run drives the workload and returns max/mean per-server load.
func run(enableCache bool) float64 {
	r, err := netcache.New(netcache.Config{Servers: servers, Clients: 1, CacheCapacity: cache})
	if err != nil {
		log.Fatal(err)
	}
	r.LoadDataset(keys, 64)
	cli := r.Client(0)

	// The paper's workload: bounded Zipf with skew 0.99 (key ID i holds
	// popularity rank i).
	zipf, err := netcache.NewZipf(keys, 0.99)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	sample := func() int { return zipf.SampleRank(rng) }

	before := perServerGets(r)
	for q := 0; q < queries; q++ {
		if _, err := cli.Get(netcache.KeyName(sample())); err != nil {
			log.Fatal(err)
		}
		// The paper's controller refreshes statistics every second;
		// here one cycle per 2000 queries plays that role.
		if enableCache && q%2000 == 1999 {
			r.Tick()
		}
	}
	loads := perServerGets(r)
	var total, max uint64
	for i := range loads {
		loads[i] -= before[i]
		total += loads[i]
		if loads[i] > max {
			max = loads[i]
		}
	}
	mean := float64(total) / float64(servers)

	for i, l := range loads {
		bar := strings.Repeat("#", int(float64(l)/float64(max)*40))
		fmt.Printf("server %d %7d %s\n", i, l, bar)
	}
	st := r.Stats()
	fmt.Printf("cached items: %d, server-side reads: %d of %d queries\n\n",
		st.CachedItems, total, queries)
	return float64(max) / mean
}

func perServerGets(r *netcache.Rack) []uint64 {
	out := make([]uint64, servers)
	for i := range out {
		out[i] = r.ServerGets(i)
	}
	return out
}
