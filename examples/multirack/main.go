// Multi-rack scale-out: the paper's Fig. 10f scenario (§5). Prints the
// aggregate throughput of a growing leaf-spine fabric under the three
// deployments — no caching, ToR-only caching, and ToR+spine caching — to
// show why rack-local caches stop helping at tens of racks and a spine
// cache layer restores linear scaling.
package main

import (
	"fmt"
	"math/rand"

	"netcache"
)

func main() {
	tb, err := netcache.RunExperiment("fig10f", false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	racks := tb.Col("racks")
	noc := tb.Col("nocache")
	leaf := tb.Col("leaf_cache")
	spine := tb.Col("leaf_spine_cache")

	fmt.Println("aggregate throughput (BQPS) while scaling out, Zipf-0.99 reads:")
	fmt.Printf("%6s %8s | %8s %8s %10s\n", "racks", "servers", "NoCache", "Leaf", "Leaf+Spine")
	for i := range racks {
		fmt.Printf("%6.0f %8.0f | %8.2f %8.2f %10.2f\n",
			racks[i], racks[i]*128, noc[i], leaf[i], spine[i])
	}

	last := len(racks) - 1
	fmt.Printf("\nat %d racks: NoCache is bottlenecked by the single hottest server (flat),\n", int(racks[last]))
	fmt.Printf("Leaf-only caching gained %.1fx (per-rack ToRs saturate on globally-hot items),\n", leaf[last]/leaf[0])
	fmt.Printf("Leaf+Spine gained %.1fx — the spine cache absorbs the global head, so the\n", spine[last]/spine[0])
	fmt.Println("fabric scales with the number of servers, as Fig. 10f of the paper shows.")

	demoPacketFabric()
}

// demoPacketFabric runs the packet-level leaf-spine prototype: two racks
// behind real NetCache ToR switches under one caching spine switch, Zipf
// traffic, and the two cache layers splitting the head between them.
func demoPacketFabric() {
	fmt.Println("\n-- packet-level prototype: 2 racks x 4 servers under a caching spine --")
	fb, err := netcache.NewLeafSpine(netcache.LeafSpineConfig{
		Racks: 2, ServersPerRack: 4, Clients: 1, SpineCache: 32, TorCache: 32,
		Window: 32,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	const keys = 2000
	fb.LoadDataset(keys, 64)
	zipf, err := netcache.NewZipf(keys, 0.99)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cli := fb.Client(0)
	rng := rand.New(rand.NewSource(7))
	batch := make([]netcache.Key, 32) // one pipelined window per GetBatch
	for tick := 0; tick < 4; tick++ {
		for q := 0; q < 3000; q += len(batch) {
			for i := range batch {
				batch[i] = netcache.KeyName(zipf.SampleRank(rng))
			}
			_, errs := cli.GetBatch(batch)
			for _, err := range errs {
				if err != nil {
					fmt.Println("error:", err)
					return
				}
			}
		}
		fb.Tick()
	}
	fmt.Printf("after 4 controller cycles: spine caches %d items; ToRs cache %d and %d\n",
		fb.SpineCacheLen(), fb.TorCacheLen(0), fb.TorCacheLen(1))

	// Writes stay coherent across both layers.
	hot := netcache.KeyName(0)
	if err := cli.Put(hot, []byte("rewritten-everywhere")); err != nil {
		fmt.Println("error:", err)
		return
	}
	v, err := cli.Get(hot)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("write to the hottest key stayed coherent through both cache layers: %q\n", v)
}
