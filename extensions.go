package netcache

// Extensions beyond the paper's restricted interface, implementing the
// client-side techniques §5 sketches:
//
//   - variable-length keys, hashed onto the fixed 16-byte key with the
//     original key's fingerprint stored alongside the value so hash
//     collisions are detected (§5 "Restricted key-value interface");
//   - values larger than 128 bytes, split into chunks retrieved with
//     multiple queries (§5 "For large items that do not fit in one packet,
//     one can always divide an item into smaller chunks");
//   - switch reboot with an empty cache (§3 "if the switch fails, operators
//     can simply reboot the switch with an empty cache ... they will refill
//     rapidly").

import (
	"encoding/binary"
	"errors"
	"fmt"

	"netcache/internal/netproto"
	"netcache/internal/sketch"
)

// ErrHashCollision reports that the value found under a hashed key belongs
// to a different original key. With a 128-bit primary hash plus a 64-bit
// stored fingerprint this is cryptographically negligible; the check exists
// because the paper requires clients to verify (§5).
var ErrHashCollision = errors.New("netcache: hash collision detected")

// varOverhead is the per-value metadata of the variable-key encoding:
// 1 byte of original-key length + 8 bytes of fingerprint.
const varOverhead = 9

// MaxVarValueSize is the largest value storable through VarClient.
const MaxVarValueSize = netproto.MaxValueSize - varOverhead

// VarClient stores items under arbitrary-length keys by hashing them onto
// the fixed key type and verifying a stored fingerprint on every read.
type VarClient struct {
	c *Client
}

// VarClient returns a variable-length-key view over client handle i.
func (r *Rack) VarClient(i int) *VarClient { return &VarClient{c: r.Client(i)} }

func varFingerprint(raw []byte) uint64 {
	return sketch.Hash64(raw, 0x5851F42D4C957F2D)
}

func varEncode(raw, value []byte) []byte {
	out := make([]byte, 0, varOverhead+len(value))
	out = append(out, byte(len(raw)))
	out = binary.BigEndian.AppendUint64(out, varFingerprint(raw))
	return append(out, value...)
}

func varDecode(raw, stored []byte) ([]byte, error) {
	if len(stored) < varOverhead {
		return nil, fmt.Errorf("netcache: value too short for variable-key envelope")
	}
	if int(stored[0]) != len(raw)&0xFF ||
		binary.BigEndian.Uint64(stored[1:9]) != varFingerprint(raw) {
		return nil, ErrHashCollision
	}
	return stored[varOverhead:], nil
}

// Put stores value under an arbitrary-length key.
func (vc *VarClient) Put(rawKey, value []byte) error {
	if len(rawKey) == 0 {
		return fmt.Errorf("netcache: empty key")
	}
	if len(value) == 0 || len(value) > MaxVarValueSize {
		return fmt.Errorf("netcache: value size %d out of (0,%d]", len(value), MaxVarValueSize)
	}
	return vc.c.Put(HashKey(rawKey), varEncode(rawKey, value))
}

// Get fetches the value stored under an arbitrary-length key, verifying the
// stored fingerprint against the original key.
func (vc *VarClient) Get(rawKey []byte) ([]byte, error) {
	stored, err := vc.c.Get(HashKey(rawKey))
	if err != nil {
		return nil, err
	}
	return varDecode(rawKey, stored)
}

// Delete removes the item stored under an arbitrary-length key.
func (vc *VarClient) Delete(rawKey []byte) error {
	return vc.c.Delete(HashKey(rawKey))
}

// chunk layout for ChunkedClient: chunk 0 carries a 4-byte total length
// followed by data; subsequent chunks are pure data under derived keys.
const (
	chunkHeader   = 4
	chunk0Payload = netproto.MaxValueSize - chunkHeader
	chunkPayload  = netproto.MaxValueSize
)

// MaxChunkedValueSize bounds ChunkedClient values; generous enough for the
// MTU-scale items §5 discusses.
const MaxChunkedValueSize = 1 << 20

// ChunkedClient stores values of arbitrary size (up to MaxChunkedValueSize)
// by splitting them across multiple items, the multi-packet retrieval of
// §5. Hot chunks are cached by the switch like any other item. A multi-
// chunk Put is not atomic with respect to concurrent readers of the same
// key — the paper's interface has no multi-key transactions to build on.
type ChunkedClient struct {
	c *Client
}

// ChunkedClient returns a large-value view over client handle i.
func (r *Rack) ChunkedClient(i int) *ChunkedClient { return &ChunkedClient{c: r.Client(i)} }

func chunkKey(rawKey []byte, i int) Key {
	if i == 0 {
		return HashKey(rawKey)
	}
	var suffix [8]byte
	binary.BigEndian.PutUint64(suffix[:], uint64(i))
	return HashKey(append(append([]byte(nil), rawKey...), suffix[:]...))
}

// chunkCount returns how many chunks a value of n bytes needs.
func chunkCount(n int) int {
	if n <= chunk0Payload {
		return 1
	}
	rest := n - chunk0Payload
	return 1 + (rest+chunkPayload-1)/chunkPayload
}

// Put stores a value of up to MaxChunkedValueSize bytes.
func (cc *ChunkedClient) Put(rawKey, value []byte) error {
	if len(rawKey) == 0 {
		return fmt.Errorf("netcache: empty key")
	}
	if len(value) == 0 || len(value) > MaxChunkedValueSize {
		return fmt.Errorf("netcache: value size %d out of (0,%d]", len(value), MaxChunkedValueSize)
	}
	// Remember the previous chunk count so a shrinking overwrite can
	// garbage-collect the tail chunks it no longer references.
	oldChunks := 0
	if old, err := cc.c.Get(chunkKey(rawKey, 0)); err == nil && len(old) >= chunkHeader {
		oldChunks = chunkCount(int(binary.BigEndian.Uint32(old)))
	}

	// Tail chunks first so a concurrent reader that sees the new chunk 0
	// finds every tail it references.
	n := chunkCount(len(value))
	off := len(value)
	for i := n - 1; i >= 1; i-- {
		start := chunk0Payload + (i-1)*chunkPayload
		if err := cc.c.Put(chunkKey(rawKey, i), value[start:off]); err != nil {
			return fmt.Errorf("netcache: chunk %d: %w", i, err)
		}
		off = start
	}
	head := make([]byte, 0, chunkHeader+off)
	head = binary.BigEndian.AppendUint32(head, uint32(len(value)))
	head = append(head, value[:off]...)
	if err := cc.c.Put(chunkKey(rawKey, 0), head); err != nil {
		return err
	}
	for i := n; i < oldChunks; i++ {
		if err := cc.c.Delete(chunkKey(rawKey, i)); err != nil {
			return fmt.Errorf("netcache: stale chunk %d: %w", i, err)
		}
	}
	return nil
}

// Get reassembles a chunked value.
func (cc *ChunkedClient) Get(rawKey []byte) ([]byte, error) {
	head, err := cc.c.Get(chunkKey(rawKey, 0))
	if err != nil {
		return nil, err
	}
	if len(head) < chunkHeader {
		return nil, fmt.Errorf("netcache: malformed chunk header")
	}
	total := int(binary.BigEndian.Uint32(head))
	if total > MaxChunkedValueSize {
		return nil, fmt.Errorf("netcache: chunk header claims %d bytes", total)
	}
	out := make([]byte, 0, total)
	out = append(out, head[chunkHeader:]...)
	for i := 1; len(out) < total; i++ {
		part, err := cc.c.Get(chunkKey(rawKey, i))
		if err != nil {
			return nil, fmt.Errorf("netcache: chunk %d: %w", i, err)
		}
		out = append(out, part...)
	}
	if len(out) != total {
		return nil, fmt.Errorf("netcache: reassembled %d bytes, header says %d", len(out), total)
	}
	return out, nil
}

// Delete removes all chunks of a value.
func (cc *ChunkedClient) Delete(rawKey []byte) error {
	head, err := cc.c.Get(chunkKey(rawKey, 0))
	if err == ErrNotFound {
		return nil
	}
	if err != nil {
		return err
	}
	total := 0
	if len(head) >= chunkHeader {
		total = int(binary.BigEndian.Uint32(head))
	}
	for i := chunkCount(total) - 1; i >= 0; i-- {
		if err := cc.c.Delete(chunkKey(rawKey, i)); err != nil {
			return err
		}
	}
	return nil
}

// RebootSwitch simulates a ToR switch failure and reboot (§3): the cache is
// flushed and the statistics are cleared; the system keeps serving from the
// storage servers and the cache refills over the following controller
// cycles. Returns the number of items that were flushed.
func (r *Rack) RebootSwitch() int {
	keys := r.r.Controller.CachedKeys()
	for _, k := range keys {
		r.r.Controller.EvictKey(k)
	}
	r.r.Switch.ResetStats(true)
	return len(keys)
}

// CrashServer crashes storage server i. Without Replicate its partition
// times out until RestartServer; with Replicate the controller's failure
// detector declares it dead after HeartbeatMisses Ticks and fails the
// partition over to the backup — hot keys keep serving from the switch
// cache throughout.
func (r *Rack) CrashServer(i int) { r.r.CrashServer(i) }

// RestartServer brings a crashed server back (wipe discards its store).
// With Replicate the node rejoins as a backup and catches up via the
// anti-entropy resync over the following Ticks before it is promotable.
func (r *Rack) RestartServer(i int, wipe bool) { r.r.RestartServer(i, wipe) }

// PrimaryServer returns the index of the server currently serving key's
// partition — its home server, or the promoted backup after a failover.
func (r *Rack) PrimaryServer(key Key) int {
	for i := range r.r.Servers {
		if r.r.Servers[i] == r.r.PrimaryOf(key) {
			return i
		}
	}
	return -1
}
