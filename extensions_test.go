package netcache

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestVarClientCRUD(t *testing.T) {
	r := newRack(t)
	vc := r.VarClient(0)
	key := []byte("a-key-much-longer-than-sixteen-bytes:user:profile:12345")
	value := []byte("payload")

	if _, err := vc.Get(key); err != ErrNotFound {
		t.Fatalf("absent: %v", err)
	}
	if err := vc.Put(key, value); err != nil {
		t.Fatal(err)
	}
	got, err := vc.Get(key)
	if err != nil || !bytes.Equal(got, value) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := vc.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := vc.Get(key); err != ErrNotFound {
		t.Fatalf("after delete: %v", err)
	}
}

func TestVarClientValidation(t *testing.T) {
	r := newRack(t)
	vc := r.VarClient(0)
	if err := vc.Put(nil, []byte("v")); err == nil {
		t.Error("empty key should fail")
	}
	if err := vc.Put([]byte("k"), nil); err == nil {
		t.Error("empty value should fail")
	}
	if err := vc.Put([]byte("k"), make([]byte, MaxVarValueSize+1)); err == nil {
		t.Error("oversize value should fail")
	}
	if err := vc.Put([]byte("k"), make([]byte, MaxVarValueSize)); err != nil {
		t.Errorf("max-size value should fit: %v", err)
	}
}

func TestVarClientCollisionDetected(t *testing.T) {
	// Simulate a hash collision by writing raw bytes under the hashed key
	// of a *different* original key, then reading through VarClient.
	r := newRack(t)
	vc := r.VarClient(0)
	victim := []byte("the-key-I-ask-for")
	other := []byte("a-colliding-key")
	if err := vc.Put(other, []byte("other-value")); err != nil {
		t.Fatal(err)
	}
	// Forge: copy other's stored envelope under victim's hash slot.
	stored, err := r.Client(0).Get(HashKey(other))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Client(0).Put(HashKey(victim), stored); err != nil {
		t.Fatal(err)
	}
	if _, err := vc.Get(victim); err != ErrHashCollision {
		t.Fatalf("expected ErrHashCollision, got %v", err)
	}
}

func TestVarClientHotKeyStillCaches(t *testing.T) {
	// The switch is oblivious to the envelope: variable-key items cache
	// and verify like any other.
	r := newRack(t)
	vc := r.VarClient(0)
	key := []byte("trending:topic:with-a-rather-long-name")
	if err := vc.Put(key, []byte("spicy")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := vc.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	r.Tick()
	if !r.Cached(HashKey(key)) {
		t.Fatal("hot variable-length key not cached")
	}
	got, err := vc.Get(key)
	if err != nil || string(got) != "spicy" {
		t.Fatalf("cached var-key Get = %q, %v", got, err)
	}
}

func TestChunkedClientRoundTrip(t *testing.T) {
	r := newRack(t)
	cc := r.ChunkedClient(0)
	rng := rand.New(rand.NewSource(1))

	for _, size := range []int{1, 100, 124, 125, 128, 252, 253, 1000, 5000} {
		key := []byte{byte(size), byte(size >> 8), 'k'}
		value := make([]byte, size)
		rng.Read(value)
		if err := cc.Put(key, value); err != nil {
			t.Fatalf("size %d: put: %v", size, err)
		}
		got, err := cc.Get(key)
		if err != nil || !bytes.Equal(got, value) {
			t.Fatalf("size %d: got %d bytes, err %v", size, len(got), err)
		}
	}
}

func TestChunkedClientOverwriteShrinks(t *testing.T) {
	r := newRack(t)
	cc := r.ChunkedClient(0)
	key := []byte("shrinker")
	big := bytes.Repeat([]byte("B"), 2000)
	small := []byte("tiny")
	if err := cc.Put(key, big); err != nil {
		t.Fatal(err)
	}
	if err := cc.Put(key, small); err != nil {
		t.Fatal(err)
	}
	got, err := cc.Get(key)
	if err != nil || !bytes.Equal(got, small) {
		t.Fatalf("after shrink: %q, %v", got, err)
	}
}

func TestChunkedClientDelete(t *testing.T) {
	r := newRack(t)
	cc := r.ChunkedClient(0)
	key := []byte("doomed")
	if err := cc.Put(key, bytes.Repeat([]byte("x"), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := cc.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Get(key); err != ErrNotFound {
		t.Fatalf("after delete: %v", err)
	}
	// Tail chunks are gone too (probe one directly).
	if _, err := r.Client(0).Get(chunkKey(key, 1)); err != ErrNotFound {
		t.Errorf("tail chunk survived delete: %v", err)
	}
	// Deleting an absent key is fine.
	if err := cc.Delete([]byte("never-existed")); err != nil {
		t.Errorf("idempotent delete: %v", err)
	}
}

func TestChunkedClientValidation(t *testing.T) {
	r := newRack(t)
	cc := r.ChunkedClient(0)
	if err := cc.Put(nil, []byte("v")); err == nil {
		t.Error("empty key should fail")
	}
	if err := cc.Put([]byte("k"), nil); err == nil {
		t.Error("empty value should fail")
	}
	if err := cc.Put([]byte("k"), make([]byte, MaxChunkedValueSize+1)); err == nil {
		t.Error("oversize should fail")
	}
}

func TestChunkCount(t *testing.T) {
	cases := map[int]int{1: 1, 124: 1, 125: 2, 124 + 128: 2, 124 + 129: 3}
	for size, want := range cases {
		if got := chunkCount(size); got != want {
			t.Errorf("chunkCount(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestRebootSwitchRecovers(t *testing.T) {
	r := newRack(t)
	r.LoadDataset(100, 64)
	cli := r.Client(0)
	hot := KeyName(5)
	for i := 0; i < 20; i++ {
		cli.Get(hot)
	}
	r.Tick()
	if !r.Cached(hot) {
		t.Fatal("setup: key not cached")
	}

	// Crash-reboot: cache flushed, no state carried over (§3: the switch
	// holds no critical state).
	if n := r.RebootSwitch(); n != 1 {
		t.Errorf("flushed %d items, want 1", n)
	}
	if r.CacheLen() != 0 {
		t.Fatal("cache not empty after reboot")
	}

	// The system keeps serving correct data from the servers...
	v, err := cli.Get(hot)
	if err != nil || len(v) != 64 {
		t.Fatalf("post-reboot Get: %d bytes, %v", len(v), err)
	}
	// ...and the cache refills within one controller cycle of traffic
	// ("they will refill rapidly").
	for i := 0; i < 20; i++ {
		cli.Get(hot)
	}
	r.Tick()
	if !r.Cached(hot) {
		t.Fatal("cache did not refill after reboot")
	}
}

func TestWritePolicyDisablesAndReenables(t *testing.T) {
	r, err := New(Config{
		Servers: 2, Clients: 1, CacheCapacity: 8,
		WritePolicy: WritePolicy{Enable: true, WindowCycles: 2, CooldownCycles: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.LoadDataset(50, 32)
	cli := r.Client(0)
	hot := KeyName(1)
	if err := r.PrePopulateTopK(4); err != nil {
		t.Fatal(err)
	}

	// Write-dominated phase: hammer the cached keys with writes and read
	// them rarely — invalidations swamp hits.
	writeStorm := func() {
		for i := 0; i < 30; i++ {
			for k := 0; k < 4; k++ {
				if err := cli.Put(KeyName(k), []byte{byte(i)}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	writeStorm()
	r.Tick() // cycle 1: write-dominated
	if r.CachingDisabled() {
		t.Fatal("one cycle below the window must not disable yet")
	}
	writeStorm()
	r.Tick() // cycle 2: window reached -> disable + flush
	if !r.CachingDisabled() {
		t.Fatal("write-dominated window should disable caching")
	}
	if r.CacheLen() != 0 {
		t.Fatalf("disable should flush the cache, %d left", r.CacheLen())
	}

	// During cooldown, hot reads do not refill the cache.
	for i := 0; i < 30; i++ {
		cli.Get(hot)
	}
	r.Tick() // cooldown 2
	if r.CacheLen() != 0 || !r.CachingDisabled() {
		t.Fatal("cache refilled during cooldown")
	}
	r.Tick() // cooldown 1 -> re-enable on the next cycle

	// Read-only again: the cache comes back.
	for i := 0; i < 30; i++ {
		cli.Get(hot)
	}
	r.Tick()
	if r.CachingDisabled() {
		t.Fatal("policy should have re-enabled after cooldown")
	}
	for i := 0; i < 30; i++ {
		cli.Get(hot)
	}
	r.Tick()
	if !r.Cached(hot) {
		t.Fatal("hot key not re-cached after re-enable")
	}
}

func TestWritePolicyIgnoresReadOnlyLoad(t *testing.T) {
	r, err := New(Config{
		Servers: 2, Clients: 1, CacheCapacity: 8,
		WritePolicy: WritePolicy{Enable: true, WindowCycles: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.LoadDataset(50, 32)
	r.PrePopulateTopK(4)
	cli := r.Client(0)
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 50; i++ {
			cli.Get(KeyName(i % 4))
		}
		r.Tick()
		if r.CachingDisabled() {
			t.Fatal("read-only load must never trip the write policy")
		}
	}
	if r.CacheLen() != 4 {
		t.Errorf("cache len = %d", r.CacheLen())
	}
}

func TestChunkedClientShrinkCollectsStaleChunks(t *testing.T) {
	r := newRack(t)
	cc := r.ChunkedClient(0)
	key := []byte("gc-me")
	if err := cc.Put(key, bytes.Repeat([]byte("A"), 1000)); err != nil { // 8 chunks
		t.Fatal(err)
	}
	if err := cc.Put(key, []byte("tiny")); err != nil { // 1 chunk
		t.Fatal(err)
	}
	// Every stale tail chunk must be gone from the stores.
	for i := 1; i < chunkCount(1000); i++ {
		if _, err := r.Client(0).Get(chunkKey(key, i)); err != ErrNotFound {
			t.Errorf("stale chunk %d survived the shrink: %v", i, err)
		}
	}
	v, err := cc.Get(key)
	if err != nil || !bytes.Equal(v, []byte("tiny")) {
		t.Fatalf("after shrink: %q %v", v, err)
	}
}

func TestReplicatedFailoverFacade(t *testing.T) {
	r, err := New(Config{Servers: 4, Clients: 1, CacheCapacity: 32,
		Replicate: true, HeartbeatMisses: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.LoadDataset(100, 64)
	cli := r.Client(0)
	key := KeyName(5)
	if err := cli.Put(key, []byte("acked-before-crash")); err != nil {
		t.Fatal(err)
	}
	home := r.PrimaryServer(key)
	if home < 0 {
		t.Fatal("no primary for key")
	}

	// Kill the primary for good. One Tick trips the 1-miss detector and
	// flips the partition's routes to the backup.
	r.CrashServer(home)
	r.Tick()
	if p := r.PrimaryServer(key); p == home || p < 0 {
		t.Fatalf("partition did not fail over (primary still %d)", p)
	}
	// The acked write survives the permanent failure, and the partition
	// accepts new writes without the dead node.
	if v, err := cli.Get(key); err != nil || string(v) != "acked-before-crash" {
		t.Fatalf("read from promoted backup: %q %v", v, err)
	}
	if err := cli.Put(key, []byte("written-after-failover")); err != nil {
		t.Fatalf("write after failover: %v", err)
	}

	// The crashed node rejoins as a backup and catches back up over the
	// following controller cycles.
	r.RestartServer(home, false)
	for i := 0; i < 50; i++ {
		r.Tick()
	}
	if v, err := cli.Get(key); err != nil || string(v) != "written-after-failover" {
		t.Fatalf("read after rejoin: %q %v", v, err)
	}
}
