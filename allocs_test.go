//go:build !race

// Allocation-regression tests for the pooled packet path. testing.AllocsPerRun
// is unreliable under the race detector (its instrumentation allocates), so
// these are compiled out of `go test -race` and run by the plain `go test`
// pass of `make test`.
//
// The bounds are deliberately looser than today's measurements (see
// EXPERIMENTS.md for the exact numbers) so scheduler noise doesn't flake the
// suite, but tight enough that losing buffer pooling anywhere on the path —
// a forgotten ReleaseFrame, a deparser that stops using its lease, a client
// frame built with append instead of the pool — trips them immediately.

package netcache

import (
	"testing"

	"netcache/internal/bufpool"
	"netcache/internal/dataplane"
	"netcache/internal/kvstore"
	"netcache/internal/netproto"
	"netcache/internal/rack"
	"netcache/internal/workload"
)

// TestAllocsGetAppend: the seqlock read path of both storage engines. An
// optimistic GetAppend into a buffer with capacity is pure probe + append —
// exactly zero allocations, no slack: a single alloc/op here means the
// engine fell back to copying (or the caller's buffer escaped), which is
// the regression this test exists to catch.
func TestAllocsGetAppend(t *testing.T) {
	for _, name := range []string{"chained", "cuckoo"} {
		t.Run(name, func(t *testing.T) {
			s := kvstore.NewEngine(name, 4)
			key := netproto.KeyFromString("user:1")
			s.Put(key, workload.ValueFor(1, 128))
			dst := make([]byte, 0, netproto.MaxValueSize)
			allocs := testing.AllocsPerRun(1000, func() {
				v, _, ok := s.GetAppend(key, dst[:0])
				if !ok || len(v) != 128 {
					t.Fatalf("GetAppend = %d bytes, %v", len(v), ok)
				}
			})
			if allocs != 0 {
				t.Errorf("GetAppend allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

// TestAllocsServerReplySegment: the store+reply segment of the server's
// handleGet — open the reply headers in a pooled frame, append the value
// straight from the store, seal. This is the whole per-Get work of a
// storage server past packet decode, and it must not allocate.
func TestAllocsServerReplySegment(t *testing.T) {
	for _, name := range []string{"chained", "cuckoo"} {
		t.Run(name, func(t *testing.T) {
			s := kvstore.NewEngine(name, 4)
			key := netproto.KeyFromString("user:1")
			s.Put(key, workload.ValueFor(1, 128))
			frame := bufpool.Get()
			defer bufpool.Put(frame)
			allocs := testing.AllocsPerRun(1000, func() {
				frame = netproto.ReplyInto(frame[:0], 0x8001, 1, netproto.OpGetReply, 7, key)
				var ok bool
				frame, _, ok = s.GetAppend(key, frame)
				if !ok {
					t.Fatal("miss")
				}
				if err := netproto.SealReply(frame); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("store+reply segment allocates %.1f/op, want 0", allocs)
			}
		})
	}
}

// TestAllocsEncodeDecode: building a frame into a pooled buffer and decoding
// it back must not allocate at all — Decode aliases, AppendFramePacket
// appends in place.
func TestAllocsEncodeDecode(t *testing.T) {
	pkt := netproto.Packet{
		Op: netproto.OpGetReply, Seq: 7,
		Key: netproto.KeyFromString("user:1"), Value: workload.ValueFor(1, 64),
	}
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	allocs := testing.AllocsPerRun(1000, func() {
		var err error
		buf, err = netproto.AppendFramePacket(buf[:0], 1, 2, &pkt)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := netproto.DecodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		var got netproto.Packet
		if err := netproto.Decode(fr.Payload, &got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("encode+decode allocates %.1f/op, want 0", allocs)
	}
}

// TestAllocsCachedGet: the raw cache-hit GET through the switch pipeline in
// the steady-state calling convention (reused emission buffer, reply frame
// released to the pool). The issue's budget is ≤2 allocs per cached Get;
// the pooled path measures 0.
func TestAllocsCachedGet(t *testing.T) {
	r, err := rack.New(rack.Config{Servers: 4, Clients: 2, CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	r.LoadDataset(128, 128)
	key := workload.KeyName(3)
	if err := r.PrePopulate([]netproto.Key{key}); err != nil {
		t.Fatal(err)
	}
	pkt := netproto.Packet{Op: netproto.OpGet, Seq: 1, Key: key}
	payload, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	frame := netproto.MarshalFrame(r.Partition(key), rack.ClientAddr(0), payload)
	out := make([]dataplane.Emitted, 0, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		out, err = r.Switch.ProcessAppend(frame, 4, out[:0])
		if err != nil || len(out) != 1 {
			t.Fatalf("ProcessAppend = %v, %v", out, err)
		}
		dataplane.ReleaseFrame(out[0])
	})
	if allocs > 2 {
		t.Errorf("cached Get allocates %.1f/op, budget is 2", allocs)
	}
}

// TestAllocsServerGet: the full end-to-end miss path — client, simnet,
// switch, storage server, and back. With the reply channel pooled and the
// fabric's fault passthrough allocation-free, the one real per-query
// allocation left is the value copy Get hands its caller: 1/op measured,
// 4 allowed (map growth and pool misses amortize in).
func TestAllocsServerGet(t *testing.T) {
	r, err := New(Config{Servers: 4, Clients: 1, CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	r.LoadDataset(128, 128)
	cli := r.Client(0)
	key := KeyName(100) // never cached
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := cli.Get(key); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("server Get allocates %.1f/op, budget is 4", allocs)
	}
}
