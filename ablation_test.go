package netcache

// Ablation benchmarks for the design decisions DESIGN.md §5 calls out. Each
// compares the paper's choice against the naive alternative and reports the
// difference as custom metrics.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"netcache/internal/cachemem"
	"netcache/internal/dataplane"
	"netcache/internal/harness"
	"netcache/internal/netproto"
	"netcache/internal/sketch"
	"netcache/internal/workload"
)

// BenchmarkAblationLookupDesign — Fig. 6b's one-lookup + (bitmap, index)
// action versus the naive one-lookup-table-per-value-array design. The
// naive layout replicates the 64K×16-byte match key eight times; on the
// modeled chip it does not even compile (no stage sequence can hold eight
// full-size exact-match tables next to the value arrays), which is the
// paper's resource argument made concrete.
func BenchmarkAblationLookupDesign(b *testing.B) {
	keyCost := func(tables, actionWords int) int {
		// Per-entry cost charged by the dataplane model: two 64-bit
		// match containers + action words + overhead, times 64K
		// entries, times the number of tables.
		per := 16 + actionWords*8 + 8
		return tables * 65536 * per
	}
	oursSRAM := keyCost(1, 1)
	naiveSRAM := keyCost(8, 1)

	var naiveCompiles bool
	for i := 0; i < b.N; i++ {
		naiveCompiles = naivePerArrayProgramCompiles()
	}
	if naiveCompiles {
		b.Fatal("naive per-array lookup should not fit the chip")
	}
	b.ReportMetric(float64(oursSRAM), "bitmap_design_sram_bytes")
	b.ReportMetric(float64(naiveSRAM), "per_array_design_sram_bytes")
	b.ReportMetric(float64(naiveSRAM)/float64(oursSRAM), "sram_ratio")
	b.ReportMetric(0, "naive_compiles")
}

// naivePerArrayProgramCompiles tries to place eight full-size lookup tables
// (one per value array, each with its own index action) plus the eight
// value arrays onto the chip.
func naivePerArrayProgramCompiles() bool {
	p := dataplane.NewProgram("naive-netcache")
	hi := p.Field("key_hi", 64)
	lo := p.Field("key_lo", 64)
	var prev *dataplane.Table
	for i := 0; i < 8; i++ {
		reg := p.Register(dataplane.RegisterSpec{
			Name: fmt.Sprintf("value_%d", i), Gress: dataplane.Egress,
			Slots: 65536, SlotBits: 128,
		})
		spec := dataplane.TableSpec{
			Name:        fmt.Sprintf("lookup_%d", i),
			Gress:       dataplane.Egress,
			MatchFields: []dataplane.FieldID{hi, lo},
			Kind:        dataplane.MatchExact,
			Size:        65536,
			// One index per table — the per-array design's action data.
			ActionDataWords: 1,
			Registers:       []*dataplane.Register{reg},
		}
		if prev != nil {
			spec.After = []*dataplane.Table{prev}
		}
		tab := p.TableBuild(spec)
		tab.Action("read", func(ctx *dataplane.Ctx, data []uint64) {
			ctx.RegAppendBytes(reg, int(data[0]), 16)
		})
		prev = tab
	}
	p.SetParser(func(raw []byte, ctx *dataplane.Ctx) error { return nil })
	p.SetDeparser(func(ctx *dataplane.Ctx, out []byte) []byte { return out })
	_, _, err := dataplane.Compile(p, dataplane.TofinoLike())
	return err == nil
}

// BenchmarkAblationAllocatorPolicy — First Fit (Algorithm 2) vs Best Fit:
// occupancy at first allocation failure and time per churn operation, under
// mixed-size insert/evict churn.
func BenchmarkAblationAllocatorPolicy(b *testing.B) {
	run := func(pol cachemem.Policy) (occupancy float64) {
		a, _ := cachemem.New(cachemem.Config{Arrays: 8, Indexes: 1024, UnitBytes: 16, Policy: pol})
		rng := rand.New(rand.NewSource(7))
		key := func(i int) netproto.Key {
			var k netproto.Key
			binary.BigEndian.PutUint32(k[:4], uint32(i))
			return k
		}
		live := make([]int, 0, 4096)
		next := 0
		for i := 0; ; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				j := rng.Intn(len(live))
				a.Evict(key(live[j]))
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			if _, err := a.Insert(key(next), 16+rng.Intn(113)); err != nil {
				return a.Occupancy()
			}
			live = append(live, next)
			next++
		}
	}
	var ff, bf float64
	for i := 0; i < b.N; i++ {
		ff = run(cachemem.FirstFit)
		bf = run(cachemem.BestFit)
	}
	b.ReportMetric(100*ff, "first_fit_occupancy_pct")
	b.ReportMetric(100*bf, "best_fit_occupancy_pct")
}

// BenchmarkAblationSampling — the statistics sampling front-end vs counting
// every query: with 16-bit counters and a heavy head, unsampled counting
// saturates the hottest Count-Min slots (losing the ability to rank the
// head), while sampling keeps them in range at a fraction of the update
// work (§4.4.3).
func BenchmarkAblationSampling(b *testing.B) {
	const queries = 3_000_000
	zipf, _ := workload.NewZipf(100_000, 0.99)

	run := func(rate float64) (saturated int, updates int) {
		cms := sketch.NewCountMin(4, 1<<16, 16)
		smp := sketch.NewSampler(rate, 11)
		rng := rand.New(rand.NewSource(3))
		var key [8]byte
		for q := 0; q < queries; q++ {
			if !smp.Sample() {
				continue
			}
			binary.BigEndian.PutUint64(key[:], uint64(zipf.SampleRank(rng)))
			cms.Add(key[:])
			updates++
		}
		for rank := 0; rank < 64; rank++ {
			binary.BigEndian.PutUint64(key[:], uint64(rank))
			if cms.Estimate(key[:]) >= 0xFFFF {
				saturated++
			}
		}
		return
	}
	var satFull, updFull, satSampled, updSampled int
	for i := 0; i < b.N; i++ {
		satFull, updFull = run(1.0)
		satSampled, updSampled = run(0.01)
	}
	if satFull == 0 {
		b.Fatal("unsampled head should saturate 16-bit counters at this load")
	}
	if satSampled > 0 {
		b.Fatal("1% sampling should keep the head in counter range")
	}
	b.ReportMetric(float64(satFull), "unsampled_saturated_topkeys")
	b.ReportMetric(float64(satSampled), "sampled_saturated_topkeys")
	b.ReportMetric(float64(updFull)/float64(updSampled), "update_work_ratio")
}

// BenchmarkAblationBloomDedup — the Bloom filter after the Count-Min sketch
// exists only to stop re-reporting a hot key on every subsequent query
// (§4.4.3). Measures controller reports per cycle with and without it.
func BenchmarkAblationBloomDedup(b *testing.B) {
	const queries = 200_000
	const threshold = 64
	zipf, _ := workload.NewZipf(100_000, 0.99)

	run := func(dedup bool) (reports int) {
		cms := sketch.NewCountMin(4, 1<<16, 16)
		bloom := sketch.NewBloom(3, 1<<18)
		rng := rand.New(rand.NewSource(5))
		var key [8]byte
		for q := 0; q < queries; q++ {
			binary.BigEndian.PutUint64(key[:], uint64(zipf.SampleRank(rng)))
			if cms.Add(key[:]) < threshold {
				continue
			}
			if dedup {
				if bloom.AddIfAbsent(key[:]) {
					reports++
				}
			} else {
				reports++
			}
		}
		return
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	if with >= without {
		b.Fatal("dedup should reduce reports")
	}
	b.ReportMetric(float64(with), "reports_with_bloom")
	b.ReportMetric(float64(without), "reports_without_bloom")
	b.ReportMetric(float64(without)/float64(with), "controller_load_reduction")
}

// BenchmarkAblationHHScope — counting only *uncached* keys in the heavy-
// hitter detector (the paper's choice, §4.2) vs counting every read: the
// cached head would otherwise dominate the sketch, wasting its resolution
// and re-reporting keys the controller already cached.
func BenchmarkAblationHHScope(b *testing.B) {
	const queries = 500_000
	const cacheSize = 1000
	const threshold = 64
	zipf, _ := workload.NewZipf(100_000, 0.99)

	run := func(uncachedOnly bool) (updates, redundantHot int) {
		cms := sketch.NewCountMin(4, 1<<14, 16)
		rng := rand.New(rand.NewSource(9))
		var key [8]byte
		for q := 0; q < queries; q++ {
			rank := zipf.SampleRank(rng)
			if uncachedOnly && rank < cacheSize {
				continue // served by the cache; not counted
			}
			binary.BigEndian.PutUint64(key[:], uint64(rank))
			est := cms.Add(key[:])
			if est >= threshold && rank < cacheSize {
				redundantHot++ // report for an already-cached key
			}
		}
		return queries - queriesSkipped(zipf, uncachedOnly, cacheSize, queries), redundantHot
	}
	var updAll, redAll, updUnc, redUnc int
	for i := 0; i < b.N; i++ {
		updAll, redAll = run(false)
		updUnc, redUnc = run(true)
	}
	if redUnc != 0 {
		b.Fatal("uncached-only counting cannot produce redundant hot reports")
	}
	b.ReportMetric(float64(redAll), "redundant_hot_count_all")
	b.ReportMetric(float64(updAll)/float64(updUnc), "sketch_update_ratio")
	_ = redAll
}

// queriesSkipped estimates how many of n Zipf queries land in the cached
// head (analytically, to avoid a second sampling pass).
func queriesSkipped(z *workload.Zipf, uncachedOnly bool, cacheSize, n int) int {
	if !uncachedOnly {
		return 0
	}
	return int(z.CumTop(cacheSize) * float64(n))
}

// BenchmarkAblationUpdatePath — §4.3's choice of *data-plane* cache updates
// (sub-microsecond refresh) against the write-around alternative where a
// written key stays invalid until the controller's next cycle (~1 s). Even
// under *uniform* writes — NetCache's favorable regime — write-around
// collapses the cache, because every cached key is written often enough to
// spend most of each second invalid.
func BenchmarkAblationUpdatePath(b *testing.B) {
	rack := harness.PaperRack(0.99)
	var dataPlane, writeAround float64
	for i := 0; i < b.N; i++ {
		dp := harness.WriteWorkload{Rack: rack, WriteRatio: 0.1}
		wa := dp
		wa.CoherenceWindow = 1.0 // one controller cycle
		dataPlane = dp.Throughput(true)
		writeAround = wa.Throughput(true)
	}
	if writeAround >= dataPlane {
		b.Fatal("write-around must underperform data-plane updates")
	}
	b.ReportMetric(dataPlane/1e9, "dataplane_update_BQPS")
	b.ReportMetric(writeAround/1e9, "write_around_BQPS")
	b.ReportMetric(dataPlane/writeAround, "advantage")
}
