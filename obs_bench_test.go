package netcache

import (
	"testing"
	"time"

	"netcache/internal/dataplane"
	"netcache/internal/rack"
	"netcache/internal/stats"
	"netcache/internal/telemetry"
	"netcache/internal/workload"
)

// BenchmarkObsSnapshot measures the cost of one full observability
// snapshot on a populated rack — the price a monitoring scrape pays.
func BenchmarkObsSnapshot(b *testing.B) {
	r, err := rack.New(rack.Config{Servers: 4, Clients: 2, CacheCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(64, 64)
	if _, err := r.Client(0).Get(workload.KeyName(0)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := r.Snapshot()
		if len(snap.Counters) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// obsPipelineBench is BenchmarkPipelineSequential's loop body, shared by
// the trace-off/trace-on pair so their difference is exactly the trace
// hook's cost.
func obsPipelineBench(b *testing.B, r *rack.Rack, frame []byte, inPort int) {
	out := make([]dataplane.Emitted, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = r.Switch.ProcessAppend(frame, inPort, out[:0])
		if err != nil || len(out) != 1 {
			b.Fatalf("ProcessAppend = %v, %v", out, err)
		}
		dataplane.ReleaseFrame(out[0])
	}
}

// BenchmarkObsTraceOffPipeline is the cache-hit GET pipeline path with
// tracing compiled in but disabled — the acceptance budget is <5% over
// BenchmarkPipelineSequential (which it is byte-for-byte identical to:
// both run with no tap installed).
func BenchmarkObsTraceOffPipeline(b *testing.B) {
	r, frame, inPort := pipelineBenchRig(b)
	obsPipelineBench(b, r, frame, inPort)
}

// BenchmarkObsTraceOnPipeline is the same path with tracing enabled into a
// 4096-record ring — the price of leaving the trace on.
func BenchmarkObsTraceOnPipeline(b *testing.B) {
	r, frame, inPort := pipelineBenchRig(b)
	r.EnableTrace(4096)
	obsPipelineBench(b, r, frame, inPort)
}

// BenchmarkMonitorWindow measures one stats.Monitor poll over a populated
// rack registry — the per-window cost of the rate engine (full counter
// collection, histogram clone+subtract, delta/rate maps).
func BenchmarkMonitorWindow(b *testing.B) {
	r, err := rack.New(rack.Config{Servers: 4, Clients: 2, CacheCapacity: 64})
	if err != nil {
		b.Fatal(err)
	}
	r.LoadDataset(64, 64)
	if _, err := r.Client(0).Get(workload.KeyName(0)); err != nil {
		b.Fatal(err)
	}
	mon := stats.NewMonitor(stats.MonitorConfig{Registry: r.Registry()})
	mon.Poll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := mon.Poll(); len(w.Rates) == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkTelemetryOffPipeline is the cache-hit GET pipeline path with no
// telemetry plane attached — the baseline for the pair below.
func BenchmarkTelemetryOffPipeline(b *testing.B) {
	r, frame, inPort := pipelineBenchRig(b)
	obsPipelineBench(b, r, frame, inPort)
}

// BenchmarkTelemetryOnPipeline is the same path with the full telemetry
// plane live: a Monitor ticking at 1ms concurrently reads every counter
// the pipeline writes, and the HTTP server is attached (exposition is
// pull-based, so an unscraped endpoint costs nothing on the packet path).
// Acceptance budget: within 5% of the telemetry-off baseline.
func BenchmarkTelemetryOnPipeline(b *testing.B) {
	r, frame, inPort := pipelineBenchRig(b)
	mon := stats.NewMonitor(stats.MonitorConfig{Registry: r.Registry(), Interval: time.Millisecond})
	mon.Start()
	defer mon.Stop()
	telemetry.New(telemetry.Config{Registry: r.Registry(), Monitor: mon})
	obsPipelineBench(b, r, frame, inPort)
}
